//! The `f32` serving tier: quantized inference with a certified error
//! bound.
//!
//! Networks train and verify in `f64`; the serving engine may opt into an
//! `f32` tier that quantizes the weights once (deterministic `as f32`
//! casts at bundle export / engine start) and runs the batched forward in
//! single precision with [`crate::fast::fast_tanh_f32`] activations. The
//! substitution is only admissible because it ships with a **certificate**
//! ([`FastTierCert`], computed by [`certify_fast_tier`]): a sound
//! per-output-dimension bound on `|f32-tier output − exact f64 output|`
//! over the bundle's input domain, derived by a layer-wise error recursion
//! whose ingredients — activation magnitude bounds from interval bound
//! propagation, weight quantization deltas, `f32` dot-product rounding
//! (`γ_n` factors), and the certified fast-tanh epsilons — are all either
//! outwardly rounded or explicitly inflated. The admission gate re-derives
//! the certificate from the shipped weights and refuses a bundle whose
//! embedded claim does not match.

use crate::activation::Activation;
use crate::fast::{fast_tanh_f32, FAST_TANH_EPS, FAST_TANH_F32_EPS};
use crate::mlp::Mlp;
use cocktail_math::{BoxRegion, Interval, Matrix};
use serde::{Deserialize, Serialize};

/// Unit roundoff of `f32` (half an ulp at 1.0).
const U32: f64 = 5.960_464_477_539_063e-8; // 2^-24

/// Unit roundoff of `f64`.
const U64: f64 = 1.110_223_024_625_156_5e-16; // 2^-53

/// Relative inflation applied to every certified bound to absorb the
/// round-to-nearest `f64` arithmetic *of the bound computation itself*
/// (a few hundred ops, ≤ `~1e-13` relative) with orders-of-magnitude
/// margin. Documented in DESIGN.md §16.
const CERT_REL_SLOP: f64 = 1e-9;

/// A quantized `f32` copy of an [`Mlp`], laid out for the serving GEMM:
/// weights are stored k-major (`in × out`), so the inner loop is an axpy
/// over independent output lanes that vectorizes without reassociation.
#[derive(Debug, Clone)]
pub struct MlpF32 {
    layers: Vec<LayerF32>,
    input_dim: usize,
    output_dim: usize,
}

#[derive(Debug, Clone)]
struct LayerF32 {
    /// `in × out`, k-major: `weights_t[k * out + j] = W[j][k] as f32`.
    weights_t: Vec<f32>,
    biases: Vec<f32>,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

/// Reusable scratch for [`MlpF32::forward_batch_into`]: once warmed for a
/// batch size, repeated forwards are allocation-free.
#[derive(Debug, Clone, Default)]
pub struct BatchCacheF32 {
    bufs: [Vec<f32>; 2],
}

impl BatchCacheF32 {
    /// Creates an empty cache; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MlpF32 {
    /// Deterministically quantizes an `f64` network (`as f32` casts).
    ///
    /// Returns `None` when the network uses an activation the `f32` tier
    /// has no certified kernel for — only `Tanh` (via
    /// [`fast_tanh_f32`]), `Relu` and `Identity` (both exact in `f32`)
    /// are supported.
    pub fn quantize(net: &Mlp) -> Option<Self> {
        let mut layers = Vec::with_capacity(net.layers().len());
        for layer in net.layers() {
            if !matches!(
                layer.activation(),
                Activation::Tanh | Activation::Relu | Activation::Identity
            ) {
                return None;
            }
            let (out_dim, in_dim) = (layer.output_dim(), layer.input_dim());
            let w = layer.weights();
            let mut weights_t = vec![0.0f32; in_dim * out_dim];
            for j in 0..out_dim {
                for k in 0..in_dim {
                    weights_t[k * out_dim + j] = w[(j, k)] as f32;
                }
            }
            layers.push(LayerF32 {
                weights_t,
                biases: layer.biases().iter().map(|&b| b as f32).collect(),
                activation: layer.activation(),
                in_dim,
                out_dim,
            });
        }
        Some(Self {
            input_dim: net.input_dim(),
            output_dim: net.output_dim(),
            layers,
        })
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Batched forward over `f64` row-vector inputs, writing `f64` outputs
    /// (the wire/engine contract stays `f64`; conversion error is part of
    /// the certificate).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()` or `out` is not
    /// `x.rows() × self.output_dim()`.
    pub fn forward_batch_into(&self, x: &Matrix, out: &mut Matrix, cache: &mut BatchCacheF32) {
        assert_eq!(x.cols(), self.input_dim, "input dimension mismatch");
        assert_eq!(
            out.shape(),
            (x.rows(), self.output_dim),
            "output shape mismatch"
        );
        let batch = x.rows();
        let [cur, nxt] = &mut cache.bufs;
        cur.clear();
        cur.extend(x.as_slice().iter().map(|&v| v as f32));
        for layer in &self.layers {
            let (ind, outd) = (layer.in_dim, layer.out_dim);
            nxt.clear();
            nxt.resize(batch * outd, 0.0);
            for (xrow, orow) in cur.chunks_exact(ind).zip(nxt.chunks_exact_mut(outd)) {
                orow.copy_from_slice(&layer.biases);
                for (k, &xv) in xrow.iter().enumerate() {
                    let wrow = &layer.weights_t[k * outd..(k + 1) * outd];
                    for (o, &w) in orow.iter_mut().zip(wrow) {
                        *o += xv * w;
                    }
                }
                match layer.activation {
                    Activation::Tanh => {
                        for o in orow.iter_mut() {
                            *o = fast_tanh_f32(*o);
                        }
                    }
                    Activation::Relu => {
                        for o in orow.iter_mut() {
                            *o = o.max(0.0);
                        }
                    }
                    _ => {}
                }
            }
            std::mem::swap(cur, nxt);
        }
        for (o, &v) in out.as_mut_slice().iter_mut().zip(cur.iter()) {
            *o = f64::from(v);
        }
    }
}

/// The fast-tier error certificate embedded in a `ControllerBundle` and
/// re-derived by the admission gate.
///
/// All bounds are sup-norm errors **in network-output units** against the
/// exact-`f64` forward, valid for every input inside the bundle's input
/// domain; the serving control error is at most `|scale_j| ×` these (the
/// clip to the control envelope is 1-Lipschitz and can only shrink it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastTierCert {
    /// Certified per-unit error of the `f64` fast-tanh kernel
    /// ([`FAST_TANH_EPS`]).
    pub fast_tanh_eps: f64,
    /// Certified per-unit error of the `f32` fast-tanh kernel
    /// ([`FAST_TANH_F32_EPS`]).
    pub fast_tanh_f32_eps: f64,
    /// Per-output-dimension error bound of the fast-tanh (`f64`) tier.
    pub fast_tanh_output_error: Vec<f64>,
    /// Per-output-dimension error bound of the quantized `f32` tier.
    pub f32_output_error: Vec<f64>,
}

impl FastTierCert {
    /// Whether `other` re-derives this certificate: every field equal to
    /// within relative tolerance `tol` (the derivation is deterministic
    /// `f64` arithmetic, so honest claims agree to the last bit; the
    /// tolerance only forgives cross-platform libm drift).
    pub fn matches(&self, other: &FastTierCert, tol: f64) -> bool {
        fn close(a: f64, b: f64, tol: f64) -> bool {
            (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-300)
        }
        close(self.fast_tanh_eps, other.fast_tanh_eps, tol)
            && close(self.fast_tanh_f32_eps, other.fast_tanh_f32_eps, tol)
            && self.fast_tanh_output_error.len() == other.fast_tanh_output_error.len()
            && self.f32_output_error.len() == other.f32_output_error.len()
            && self
                .fast_tanh_output_error
                .iter()
                .zip(&other.fast_tanh_output_error)
                .all(|(&a, &b)| close(a, b, tol))
            && self
                .f32_output_error
                .iter()
                .zip(&other.f32_output_error)
                .all(|(&a, &b)| close(a, b, tol))
    }
}

/// Standard rounding-accumulation factor `γ_n = n·u / (1 − n·u)`: a dot
/// product of length `k` computed in precision `u` deviates from the exact
/// value by at most `γ_{k} · Σ|aᵢ||bᵢ|`; we use `n = k + 2` to also cover
/// the bias add and the activation-input rounding.
fn gamma(n: usize, u: f64) -> f64 {
    let nu = n as f64 * u;
    nu / (1.0 - nu)
}

/// Computes the fast-tier certificate for `net` over `region`, or `None`
/// when the network uses activations without certified fast kernels.
///
/// Layer-wise recursion (`δ` = sup-norm deviation from the exact-`f64`
/// path entering the layer, `a` = sound activation magnitude bound from
/// interval propagation, inflated to also cover the perturbed tier):
///
/// * `f32` tier:
///   `dz = ‖Ŵ−W‖∞·(a+δ) + ‖W‖∞·δ + Δb + γ·(‖|Ŵ|‖∞·(a+δ) + ‖b̂‖∞) + γ₆₄·(‖|W|‖∞·a + ‖b‖∞)`
///   — quantization, input deviation, `f32` accumulation rounding, and
///   the `f64` oracle's own rounding;
/// * fast-tanh tier: same with `Ŵ = W`, `b̂ = b` and both `γ` terms in
///   `f64` precision;
/// * through activations: `δ ← dz + ε_kernel` for `Tanh` (the kernel's
///   certified epsilon plus 1-Lipschitz transport), `δ ← dz` for
///   `Relu`/`Identity` (exact kernels, 1-Lipschitz).
///
/// Every bound is finally inflated by a relative `1e-9` to absorb the
/// round-to-nearest arithmetic of the bound computation itself. The
/// recursion is deterministic, so admission re-derives bit-equal values
/// from an untampered bundle.
pub fn certify_fast_tier(net: &Mlp, region: &BoxRegion) -> Option<FastTierCert> {
    assert_eq!(region.dim(), net.input_dim(), "region dimension mismatch");
    MlpF32::quantize(net)?;
    // sound interval bounds entering each layer (exact-f64 path)
    let mut layer_inputs: Vec<Vec<Interval>> = vec![region.intervals().to_vec()];
    for layer in net.layers() {
        let next = layer.forward_interval(layer_inputs.last()?);
        layer_inputs.push(next);
    }

    let inflate = |v: f64| v * (1.0 + CERT_REL_SLOP) + f64::MIN_POSITIVE;

    // per-tier recursion state: sup-norm deviation entering the layer
    let in_mag = region
        .intervals()
        .iter()
        .map(Interval::mag)
        .fold(0.0, f64::max);
    let mut delta_f32 = inflate(U32 * in_mag); // input f64 → f32 conversion
    let mut delta_ft = 0.0f64; // fast-tanh tier starts bit-identical
    let mut out_f32 = Vec::new();
    let mut out_ft = Vec::new();

    for (l, layer) in net.layers().iter().enumerate() {
        let k = layer.input_dim();
        let g32 = gamma(k + 2, U32);
        let g64 = gamma(k + 2, U64);
        // activation magnitude bound entering this layer, inflated to
        // cover the perturbed tiers' activations too
        let a_mag = layer_inputs[l]
            .iter()
            .map(Interval::mag)
            .fold(0.0, f64::max);
        let w = layer.weights();
        let last = l + 1 == net.layers().len();
        let mut dz_f32_max = 0.0f64;
        let mut dz_ft_max = 0.0f64;
        let mut row_f32 = Vec::new();
        let mut row_ft = Vec::new();
        for j in 0..layer.output_dim() {
            let b = layer.biases()[j];
            let bq = f64::from(b as f32);
            let mut w_abs_sum = 0.0; // Σ|w|
            let mut wq_abs_sum = 0.0; // Σ|ŵ|
            let mut dw_sum = 0.0; // Σ|ŵ − w|
            for kk in 0..k {
                let wv = w[(j, kk)];
                let wq = f64::from(wv as f32);
                w_abs_sum += wv.abs();
                wq_abs_sum += wq.abs();
                dw_sum += (wq - wv).abs();
            }
            let a32 = a_mag + delta_f32;
            let dz32 = dw_sum * a32
                + w_abs_sum * delta_f32
                + (bq - b).abs()
                + g32 * (wq_abs_sum * a32 + bq.abs())
                + g64 * (w_abs_sum * a_mag + b.abs());
            let aft = a_mag + delta_ft;
            let dzft = w_abs_sum * delta_ft + g64 * (w_abs_sum * (a_mag + aft) + 2.0 * b.abs());
            let (d32, dft) = match layer.activation() {
                Activation::Tanh => (
                    (dz32 + FAST_TANH_F32_EPS).min(2.0),
                    (dzft + FAST_TANH_EPS).min(2.0),
                ),
                _ => (dz32, dzft),
            };
            dz_f32_max = dz_f32_max.max(d32);
            dz_ft_max = dz_ft_max.max(dft);
            if last {
                row_f32.push(inflate(d32));
                row_ft.push(inflate(dft));
            }
        }
        delta_f32 = inflate(dz_f32_max);
        delta_ft = inflate(dz_ft_max);
        if last {
            out_f32 = row_f32;
            out_ft = row_ft;
        }
    }

    Some(FastTierCert {
        fast_tanh_eps: FAST_TANH_EPS,
        fast_tanh_f32_eps: FAST_TANH_F32_EPS,
        fast_tanh_output_error: out_ft,
        f32_output_error: out_f32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::ForwardKernel;
    use crate::mlp::{BatchCache, MlpBuilder};

    fn serving_net(seed: u64) -> Mlp {
        MlpBuilder::new(2)
            .hidden(24, Activation::Tanh)
            .hidden(24, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(seed)
            .build()
    }

    fn oracle_rows(region: &BoxRegion, n: usize, seed: u64) -> Matrix {
        let mut rng = cocktail_math::rng::seeded(seed);
        Matrix::from_rows(
            (0..n)
                .map(|_| cocktail_math::rng::uniform_in_box(&mut rng, region))
                .collect(),
        )
    }

    #[test]
    fn quantize_refuses_uncertified_activations() {
        let net = MlpBuilder::new(2)
            .hidden(4, Activation::Sigmoid)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        assert!(MlpF32::quantize(&net).is_none());
        assert!(certify_fast_tier(&net, &BoxRegion::cube(2, -1.0, 1.0)).is_none());
    }

    #[test]
    fn f32_tier_stays_within_certified_bound() {
        let net = serving_net(42);
        let region = BoxRegion::cube(2, -3.0, 3.0);
        let cert = certify_fast_tier(&net, &region).expect("tanh net certifies");
        assert_eq!(cert.f32_output_error.len(), 1);
        assert!(cert.f32_output_error[0].is_finite() && cert.f32_output_error[0] > 0.0);
        let q = MlpF32::quantize(&net).expect("tanh net quantizes");
        let x = oracle_rows(&region, 512, 7);
        let mut out = Matrix::zeros(x.rows(), 1);
        let mut cache = BatchCacheF32::new();
        q.forward_batch_into(&x, &mut out, &mut cache);
        for r in 0..x.rows() {
            let exact = net.forward(x.row(r));
            let err = (out[(r, 0)] - exact[0]).abs();
            assert!(
                err <= cert.f32_output_error[0],
                "row {r}: f32 tier error {err:.3e} exceeds certified {:.3e}",
                cert.f32_output_error[0]
            );
        }
    }

    #[test]
    fn fast_tanh_tier_stays_within_certified_bound() {
        let net = serving_net(43);
        let region = BoxRegion::cube(2, -3.0, 3.0);
        let cert = certify_fast_tier(&net, &region).expect("tanh net certifies");
        let x = oracle_rows(&region, 512, 8);
        let mut cache = BatchCache::new();
        net.forward_batch_cached_kernel(&x, &mut cache, ForwardKernel::FastTanh);
        let fast = cache.activations.last().expect("filled cache").clone();
        for r in 0..x.rows() {
            let exact = net.forward(x.row(r));
            let err = (fast[(r, 0)] - exact[0]).abs();
            assert!(
                err <= cert.fast_tanh_output_error[0],
                "row {r}: fast-tanh tier error {err:.3e} exceeds certified {:.3e}",
                cert.fast_tanh_output_error[0]
            );
        }
    }

    #[test]
    fn exact_kernel_is_bit_identical_to_per_sample() {
        let net = serving_net(44);
        let region = BoxRegion::cube(2, -3.0, 3.0);
        let x = oracle_rows(&region, 64, 9);
        let mut cache = BatchCache::new();
        net.forward_batch_cached_kernel(&x, &mut cache, ForwardKernel::Exact);
        let batched = cache.activations.last().expect("filled cache").clone();
        for r in 0..x.rows() {
            let per = net.forward(x.row(r));
            assert_eq!(batched[(r, 0)].to_bits(), per[0].to_bits(), "row {r}");
        }
    }

    #[test]
    fn certificate_rederivation_is_deterministic() {
        let net = serving_net(45);
        let region = BoxRegion::cube(2, -2.5, 2.5);
        let a = certify_fast_tier(&net, &region).expect("certifies");
        let b = certify_fast_tier(&net, &region).expect("certifies");
        assert_eq!(a, b, "certificate derivation must be deterministic");
        assert!(a.matches(&b, 1e-12));
        let mut tampered = b.clone();
        tampered.f32_output_error[0] *= 0.5;
        assert!(!a.matches(&tampered, 1e-9), "tampered claim must not match");
    }

    #[test]
    fn fast_tanh_error_also_covers_wide_pre_activations() {
        // saturation region: fast tanh error shrinks, bound must still hold
        let net = serving_net(46);
        let region = BoxRegion::cube(2, -20.0, 20.0);
        let cert = certify_fast_tier(&net, &region).expect("certifies");
        let q = MlpF32::quantize(&net).expect("quantizes");
        let x = oracle_rows(&region, 256, 10);
        let mut out = Matrix::zeros(x.rows(), 1);
        q.forward_batch_into(&x, &mut out, &mut BatchCacheF32::new());
        for r in 0..x.rows() {
            let exact = net.forward(x.row(r));
            assert!((out[(r, 0)] - exact[0]).abs() <= cert.f32_output_error[0]);
        }
    }
}
