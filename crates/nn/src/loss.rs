//! Regression losses.
//!
//! The distillation step of Algorithm 1 uses mean squared error between the
//! student output and the teacher control input; PPO's value head uses the
//! same loss against discounted returns.

/// Mean squared error `mean((p - t)²)`.
///
/// # Panics
///
/// Panics if slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// assert_eq!(cocktail_nn::loss::mse(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
/// ```
pub fn mse(prediction: &[f64], target: &[f64]) -> f64 {
    cocktail_math::vector::mse(prediction, target)
}

/// Gradient of [`mse`] with respect to `prediction`: `2 (p - t) / n`.
///
/// # Panics
///
/// Panics if slices differ in length or are empty.
pub fn mse_gradient(prediction: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(
        prediction.len(),
        target.len(),
        "mse gradient length mismatch"
    );
    assert!(!prediction.is_empty(), "mse gradient of empty slices");
    let n = prediction.len() as f64;
    prediction
        .iter()
        .zip(target)
        .map(|(p, t)| 2.0 * (p - t) / n)
        .collect()
}

/// Huber (smooth-L1) loss with threshold `delta`, summed over components.
/// Used by the DDPG critic for robustness to reward outliers.
///
/// # Panics
///
/// Panics if slices differ in length or `delta <= 0`.
pub fn huber(prediction: &[f64], target: &[f64], delta: f64) -> f64 {
    assert_eq!(prediction.len(), target.len(), "huber length mismatch");
    assert!(delta > 0.0, "huber delta must be positive");
    prediction
        .iter()
        .zip(target)
        .map(|(p, t)| {
            let e = (p - t).abs();
            if e <= delta {
                0.5 * e * e
            } else {
                delta * (e - 0.5 * delta)
            }
        })
        .sum()
}

/// Gradient of [`huber`] with respect to `prediction`.
///
/// # Panics
///
/// Panics if slices differ in length or `delta <= 0`.
pub fn huber_gradient(prediction: &[f64], target: &[f64], delta: f64) -> Vec<f64> {
    assert_eq!(
        prediction.len(),
        target.len(),
        "huber gradient length mismatch"
    );
    assert!(delta > 0.0, "huber delta must be positive");
    prediction
        .iter()
        .zip(target)
        .map(|(p, t)| {
            let e = p - t;
            if e.abs() <= delta {
                e
            } else {
                delta * e.signum()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_on_match() {
        assert_eq!(mse(&[1.0, -2.0], &[1.0, -2.0]), 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let p = [0.5, -1.0, 2.0];
        let t = [0.0, 0.0, 1.0];
        let g = mse_gradient(&p, &t);
        let h = 1e-6;
        for i in 0..3 {
            let mut pp = p;
            pp[i] += h;
            let mut pm = p;
            pm[i] -= h;
            let fd = (mse(&pp, &t) - mse(&pm, &t)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_is_quadratic_near_zero_linear_far() {
        let d = 1.0;
        assert!((huber(&[0.5], &[0.0], d) - 0.125).abs() < 1e-12);
        assert!((huber(&[3.0], &[0.0], d) - (3.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn huber_gradient_matches_finite_differences() {
        let p = [0.3, -2.5];
        let t = [0.0, 0.0];
        let g = huber_gradient(&p, &t, 1.0);
        let h = 1e-6;
        for i in 0..2 {
            let mut pp = p;
            pp[i] += h;
            let mut pm = p;
            pm[i] -= h;
            let fd = (huber(&pp, &t, 1.0) - huber(&pm, &t, 1.0)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_below_mse_for_large_errors() {
        let p = [10.0];
        let t = [0.0];
        assert!(huber(&p, &t, 1.0) < mse(&p, &t));
    }
}
