//! Gradient stores and first-order optimizers.

use crate::mlp::Mlp;
use cocktail_math::Matrix;
use serde::{Deserialize, Serialize};

/// Accumulated gradients mirroring an [`Mlp`]'s parameter shapes.
///
/// A `GradStore` is filled by [`Mlp::backward`] across a minibatch and then
/// handed to an [`Optimizer`].
///
/// # Examples
///
/// ```
/// use cocktail_nn::{Activation, GradStore, MlpBuilder};
///
/// let net = MlpBuilder::new(2).output(1, Activation::Identity).build();
/// let grads = GradStore::zeros_like(&net);
/// assert!(grads.matches(&net));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradStore {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
}

impl GradStore {
    /// Creates a zeroed store shaped like `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        let weights = net
            .layers()
            .iter()
            .map(|l| Matrix::zeros(l.weights().rows(), l.weights().cols()))
            .collect();
        let biases = net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.biases().len()])
            .collect();
        Self { weights, biases }
    }

    /// Whether this store matches `net`'s shapes.
    pub fn matches(&self, net: &Mlp) -> bool {
        self.weights.len() == net.layers().len()
            && self
                .weights
                .iter()
                .zip(net.layers())
                .all(|(g, l)| g.shape() == l.weights().shape())
            && self
                .biases
                .iter()
                .zip(net.layers())
                .all(|(g, l)| g.len() == l.biases().len())
    }

    /// Resets all gradients to zero.
    pub fn reset(&mut self) {
        for w in &mut self.weights {
            w.as_mut_slice().fill(0.0);
        }
        for b in &mut self.biases {
            b.fill(0.0);
        }
    }

    /// Adds `scale * (gw, gb)` into layer `i`'s slots.
    ///
    /// # Panics
    ///
    /// Panics on index or shape mismatch.
    pub fn accumulate(&mut self, i: usize, gw: &Matrix, gb: &[f64], scale: f64) {
        self.weights[i].axpy(scale, gw);
        cocktail_math::vector::axpy_inplace(&mut self.biases[i], scale, gb);
    }

    /// Weight gradients of layer `i`.
    pub fn weight(&self, i: usize) -> &Matrix {
        &self.weights[i]
    }

    /// Bias gradients of layer `i`.
    pub fn bias(&self, i: usize) -> &[f64] {
        &self.biases[i]
    }

    /// Largest absolute gradient entry (for clipping / diagnostics).
    pub fn max_abs(&self) -> f64 {
        let w = self.weights.iter().map(Matrix::max_abs).fold(0.0, f64::max);
        let b = self
            .biases
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0_f64, |m, &x| m.max(x.abs()));
        w.max(b)
    }

    /// Global L2 norm of all gradient entries.
    pub fn global_norm(&self) -> f64 {
        let mut acc = 0.0;
        for w in &self.weights {
            acc += w.as_slice().iter().map(|v| v * v).sum::<f64>();
        }
        for b in &self.biases {
            acc += b.iter().map(|v| v * v).sum::<f64>();
        }
        acc.sqrt()
    }

    /// Rescales gradients so the global norm does not exceed `max_norm`.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm <= 0`.
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.global_norm();
        if norm <= max_norm {
            return;
        }
        let s = max_norm / norm;
        for w in &mut self.weights {
            w.scale_inplace(s);
        }
        for b in &mut self.biases {
            for v in b.iter_mut() {
                *v *= s;
            }
        }
    }

    /// Adds `2 λ q` weight-decay gradients for every parameter of `net`
    /// (the L2 regularizer of robust distillation).
    ///
    /// # Panics
    ///
    /// Panics if the store does not match `net`.
    pub fn add_weight_decay(&mut self, net: &Mlp, lambda: f64) {
        assert!(self.matches(net), "gradient store shape mismatch");
        for (i, layer) in net.layers().iter().enumerate() {
            self.weights[i].axpy(2.0 * lambda, layer.weights());
            cocktail_math::vector::axpy_inplace(&mut self.biases[i], 2.0 * lambda, layer.biases());
        }
    }
}

/// A first-order optimizer that applies a [`GradStore`] to an [`Mlp`].
///
/// The trait is object-safe so training loops can hold `Box<dyn Optimizer>`.
pub trait Optimizer {
    /// Applies one update step of the accumulated gradients to `net`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `grads` does not match `net`.
    fn step(&mut self, net: &mut Mlp, grads: &GradStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Implementations panic if `lr <= 0`.
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Option<GradStore>,
}

impl Sgd {
    /// Creates plain SGD.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            velocity: None,
        }
    }

    /// Creates SGD with momentum `mu ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `mu` is outside `[0, 1)`.
    pub fn with_momentum(lr: f64, mu: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum: mu,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp, grads: &GradStore) {
        assert!(grads.matches(net), "gradient store shape mismatch");
        if self.momentum == 0.0 {
            for (i, layer) in net.layers_mut().iter_mut().enumerate() {
                layer.weights_mut().axpy(-self.lr, grads.weight(i));
                cocktail_math::vector::axpy_inplace(layer.biases_mut(), -self.lr, grads.bias(i));
            }
            return;
        }
        let velocity = self.velocity.get_or_insert_with(|| {
            let mut v = grads.clone();
            v.reset();
            v
        });
        for i in 0..net.layers().len() {
            velocity.weights[i].scale_inplace(self.momentum);
            velocity.weights[i].axpy(1.0, grads.weight(i));
            for (v, g) in velocity.biases[i].iter_mut().zip(grads.bias(i)) {
                *v = self.momentum * *v + g;
            }
        }
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            layer.weights_mut().axpy(-self.lr, &velocity.weights[i]);
            cocktail_math::vector::axpy_inplace(layer.biases_mut(), -self.lr, &velocity.biases[i]);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
///
/// Serializable so a training checkpoint can capture the exact optimizer
/// moments (`m`, `v`, step count `t`) and resume bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Option<GradStore>,
    v: Option<GradStore>,
}

impl Adam {
    /// Creates Adam with the standard `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: None,
            v: None,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp, grads: &GradStore) {
        assert!(grads.matches(net), "gradient store shape mismatch");
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let m = self.m.get_or_insert_with(|| {
            let mut s = grads.clone();
            s.reset();
            s
        });
        let v = self.v.get_or_insert_with(|| {
            let mut s = grads.clone();
            s.reset();
            s
        });
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            // weights
            {
                let g = grads.weight(i).as_slice();
                let mw = m.weights[i].as_mut_slice();
                let vw = v.weights[i].as_mut_slice();
                let pw = layer.weights_mut().as_mut_slice();
                for j in 0..g.len() {
                    mw[j] = b1 * mw[j] + (1.0 - b1) * g[j];
                    vw[j] = b2 * vw[j] + (1.0 - b2) * g[j] * g[j];
                    let mhat = mw[j] / bc1;
                    let vhat = vw[j] / bc2;
                    pw[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
            // biases
            {
                let g = grads.bias(i);
                let mb = &mut m.biases[i];
                let vb = &mut v.biases[i];
                let pb = layer.biases_mut();
                for j in 0..g.len() {
                    mb[j] = b1 * mb[j] + (1.0 - b1) * g[j];
                    vb[j] = b2 * vb[j] + (1.0 - b2) * g[j] * g[j];
                    let mhat = mb[j] / bc1;
                    let vhat = vb[j] / bc2;
                    pb[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss;
    use crate::mlp::MlpBuilder;

    fn tiny_net(seed: u64) -> Mlp {
        MlpBuilder::new(1)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(seed)
            .build()
    }

    fn train_step(net: &mut Mlp, opt: &mut dyn Optimizer, x: &[f64], t: &[f64]) -> f64 {
        let mut grads = GradStore::zeros_like(net);
        let cache = net.forward_cached(x);
        let l = loss::mse(cache.output(), t);
        let g = loss::mse_gradient(cache.output(), t);
        net.backward(&cache, &g, &mut grads, 1.0);
        opt.step(net, &grads);
        l
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut net = tiny_net(1);
        let mut opt = Sgd::new(0.1);
        let first = train_step(&mut net, &mut opt, &[0.5], &[1.0]);
        let mut last = first;
        for _ in 0..100 {
            last = train_step(&mut net, &mut opt, &[0.5], &[1.0]);
        }
        assert!(last < first * 0.01, "loss {first} -> {last}");
    }

    #[test]
    fn momentum_sgd_reduces_loss() {
        let mut net = tiny_net(2);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let first = train_step(&mut net, &mut opt, &[0.2], &[-1.0]);
        let mut last = first;
        for _ in 0..100 {
            last = train_step(&mut net, &mut opt, &[0.2], &[-1.0]);
        }
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut net = tiny_net(3);
        let mut opt = Adam::new(0.02);
        let first = train_step(&mut net, &mut opt, &[-0.4], &[0.7]);
        let mut last = first;
        for _ in 0..200 {
            last = train_step(&mut net, &mut opt, &[-0.4], &[0.7]);
        }
        assert!(last < first * 0.01, "loss {first} -> {last}");
    }

    #[test]
    fn grad_store_reset_and_norms() {
        let net = tiny_net(4);
        let mut grads = GradStore::zeros_like(&net);
        assert_eq!(grads.global_norm(), 0.0);
        let cache = net.forward_cached(&[0.1]);
        let g = loss::mse_gradient(cache.output(), &[5.0]);
        net.backward(&cache, &g, &mut grads, 1.0);
        assert!(grads.global_norm() > 0.0);
        assert!(grads.max_abs() > 0.0);
        grads.reset();
        assert_eq!(grads.global_norm(), 0.0);
    }

    #[test]
    fn clip_global_norm_caps() {
        let net = tiny_net(5);
        let mut grads = GradStore::zeros_like(&net);
        let cache = net.forward_cached(&[0.9]);
        let g = loss::mse_gradient(cache.output(), &[100.0]);
        net.backward(&cache, &g, &mut grads, 1.0);
        grads.clip_global_norm(0.5);
        assert!(grads.global_norm() <= 0.5 + 1e-12);
    }

    #[test]
    fn weight_decay_points_towards_zero() {
        let net = tiny_net(6);
        let mut grads = GradStore::zeros_like(&net);
        grads.add_weight_decay(&net, 0.1);
        // gradient of λ‖q‖² is 2λq: same sign as the parameter
        for (i, layer) in net.layers().iter().enumerate() {
            for (g, w) in grads
                .weight(i)
                .as_slice()
                .iter()
                .zip(layer.weights().as_slice())
            {
                assert_eq!(g.signum(), (2.0 * 0.1 * w).signum());
            }
        }
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_lr_panics() {
        Sgd::new(0.0);
    }

    #[test]
    fn adam_checkpoint_round_trip_resumes_exactly() {
        // train 5 steps, snapshot net+optimizer, train 5 more; the resumed
        // copy must land on bit-identical parameters
        let mut net = tiny_net(7);
        let mut opt = Adam::new(0.05);
        for _ in 0..5 {
            train_step(&mut net, &mut opt, &[0.3], &[-0.8]);
        }
        let json_net = serde_json::to_string(&net).expect("net json");
        let json_opt = serde_json::to_string(&opt).expect("opt json");
        let mut net2: Mlp = serde_json::from_str(&json_net).expect("net back");
        let mut opt2: Adam = serde_json::from_str(&json_opt).expect("opt back");
        assert_eq!(opt2, opt);
        for _ in 0..5 {
            train_step(&mut net, &mut opt, &[0.3], &[-0.8]);
            train_step(&mut net2, &mut opt2, &[0.3], &[-0.8]);
        }
        assert_eq!(net, net2);
    }
}
