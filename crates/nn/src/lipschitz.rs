//! Lipschitz-constant bounds for MLPs.
//!
//! The paper (footnote 1) bounds the network Lipschitz constant by the
//! product of per-layer terms: `‖W‖` for ReLU/Tanh layers and `‖W‖/4` for
//! Sigmoid layers. [`Mlp::lipschitz_constant`] uses the spectral norm; this
//! module additionally exposes the 1-, ∞- and Frobenius-norm variants (all
//! are valid upper bounds for the corresponding vector norms) and an
//! empirical lower bound by pairwise sampling, which is handy for testing
//! that the analytic bound is neither violated nor absurdly loose.

use crate::mlp::Mlp;
use cocktail_math::{rng, vector, BoxRegion, Matrix};

/// Which operator norm to use per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// Largest singular value (pairs with the vector 2-norm).
    Spectral,
    /// Maximum absolute column sum (pairs with the vector 1-norm).
    One,
    /// Maximum absolute row sum (pairs with the vector ∞-norm).
    Infinity,
    /// Frobenius norm (an upper bound on the spectral norm).
    Frobenius,
}

fn layer_norm(w: &Matrix, kind: NormKind) -> f64 {
    match kind {
        NormKind::Spectral => w.spectral_norm(),
        NormKind::One => w.norm_1(),
        NormKind::Infinity => w.norm_inf(),
        NormKind::Frobenius => w.frobenius_norm(),
    }
}

/// Product-of-layer-norms Lipschitz upper bound with a chosen norm.
///
/// # Examples
///
/// ```
/// use cocktail_nn::{Activation, MlpBuilder};
/// use cocktail_nn::lipschitz::{upper_bound, NormKind};
///
/// let net = MlpBuilder::new(2).hidden(8, Activation::Tanh)
///     .output(1, Activation::Identity).seed(0).build();
/// let spectral = upper_bound(&net, NormKind::Spectral);
/// let frob = upper_bound(&net, NormKind::Frobenius);
/// assert!(spectral <= frob + 1e-9);
/// ```
pub fn upper_bound(net: &Mlp, kind: NormKind) -> f64 {
    net.layers()
        .iter()
        .map(|l| l.activation().lipschitz_factor() * layer_norm(l.weights(), kind))
        .product()
}

/// Empirical Lipschitz lower bound: the largest observed
/// `‖f(a) − f(b)‖₂ / ‖a − b‖₂` over `samples` random pairs in `region`.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or `samples == 0`.
pub fn empirical_lower_bound(net: &Mlp, region: &BoxRegion, samples: usize, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample pair");
    assert_eq!(region.dim(), net.input_dim(), "region dimension mismatch");
    let mut rng = rng::seeded(seed);
    // Draw all pairs up front (preserving the historical a-then-b stream
    // order), then push both endpoint sets through one batched forward —
    // each output row is bit-identical to a per-sample `forward` call.
    let mut pairs_a = Vec::with_capacity(samples);
    let mut pairs_b = Vec::with_capacity(samples);
    for _ in 0..samples {
        pairs_a.push(rng::uniform_in_box(&mut rng, region));
        pairs_b.push(rng::uniform_in_box(&mut rng, region));
    }
    let ya = net.forward_batch(&Matrix::from_rows(pairs_a.clone()));
    let yb = net.forward_batch(&Matrix::from_rows(pairs_b.clone()));
    let mut best: f64 = 0.0;
    for i in 0..samples {
        let dx = vector::norm_2(&vector::sub(&pairs_a[i], &pairs_b[i]));
        if dx < 1e-12 {
            continue;
        }
        let dy = vector::norm_2(&vector::sub(ya.row(i), yb.row(i)));
        best = best.max(dy / dx);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::MlpBuilder;

    fn net() -> Mlp {
        MlpBuilder::new(2)
            .hidden(10, Activation::Tanh)
            .hidden(10, Activation::Sigmoid)
            .output(1, Activation::Identity)
            .seed(21)
            .build()
    }

    #[test]
    fn spectral_bound_is_tightest_induced_2_bound() {
        let n = net();
        assert!(upper_bound(&n, NormKind::Spectral) <= upper_bound(&n, NormKind::Frobenius) + 1e-9);
    }

    #[test]
    fn empirical_never_exceeds_spectral_bound() {
        let n = net();
        let region = BoxRegion::cube(2, -3.0, 3.0);
        let lower = empirical_lower_bound(&n, &region, 500, 7);
        let upper = upper_bound(&n, NormKind::Spectral);
        assert!(lower <= upper * (1.0 + 1e-9), "{lower} > {upper}");
        assert!(lower > 0.0);
    }

    #[test]
    fn sigmoid_quarter_factor_applies() {
        // single sigmoid layer with identity weights: bound must be 1/4
        let l =
            crate::layer::Dense::from_parts(Matrix::identity(3), vec![0.0; 3], Activation::Sigmoid);
        let n = Mlp::from_layers(vec![l]);
        assert!((upper_bound(&n, NormKind::Spectral) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn bound_agrees_with_mlp_method() {
        let n = net();
        assert!((upper_bound(&n, NormKind::Spectral) - n.lipschitz_constant()).abs() < 1e-12);
    }

    #[test]
    fn scaling_weights_scales_bound() {
        let mut n = net();
        let before = n.lipschitz_constant();
        for l in n.layers_mut() {
            l.weights_mut().scale_inplace(0.5);
        }
        let after = n.lipschitz_constant();
        let layers = 3;
        assert!((after - before * 0.5_f64.powi(layers)).abs() < 1e-9 * before);
    }
}
