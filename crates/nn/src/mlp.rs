//! Multi-layer perceptrons.

use crate::activation::Activation;
use crate::fast::ForwardKernel;
use crate::layer::Dense;
use crate::optimizer::GradStore;
use cocktail_math::{BoxRegion, Interval, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A feed-forward multi-layer perceptron.
///
/// Construct one with [`MlpBuilder`]. The network owns its layers and
/// exposes a cached forward pass ([`Mlp::forward_cached`]) whose result
/// feeds [`Mlp::backward`] to obtain parameter gradients and the gradient
/// of the loss with respect to the *input* — the quantity FGSM perturbs.
///
/// # Examples
///
/// ```
/// use cocktail_nn::{Activation, MlpBuilder};
///
/// let net = MlpBuilder::new(2)
///     .hidden(16, Activation::Tanh)
///     .output(1, Activation::Identity)
///     .seed(1)
///     .build();
/// assert_eq!(net.input_dim(), 2);
/// assert_eq!(net.output_dim(), 1);
/// assert_eq!(net.forward(&[0.0, 0.0]).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Cached per-layer values of a forward pass, consumed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Input and each layer's activation output (`layers.len() + 1` entries).
    pub activations: Vec<Vec<f64>>,
    /// Each layer's pre-activation (`layers.len()` entries).
    pub pre_activations: Vec<Vec<f64>>,
}

impl ForwardCache {
    /// The network output (last activation).
    #[allow(
        clippy::expect_used,
        reason = "the cache always holds the input activation"
    )]
    pub fn output(&self) -> &[f64] {
        self.activations
            .last()
            .expect("cache always holds the input")
    }
}

/// Cached per-layer values of a batched forward pass, consumed by
/// [`Mlp::backward_batch`].
///
/// The cache owns its scratch matrices and reuses them across calls to
/// [`Mlp::forward_batch_cached`] whenever the batch size is unchanged, so a
/// training loop allocates the per-layer buffers once per batch *shape*
/// rather than once per minibatch.
#[derive(Debug, Clone, Default)]
pub struct BatchCache {
    /// Input and each layer's activation output (`layers.len() + 1` entries),
    /// one sample per row.
    pub activations: Vec<Matrix>,
    /// Each layer's pre-activation (`layers.len()` entries), one sample per
    /// row.
    pub pre_activations: Vec<Matrix>,
    /// Transposed-weight scratch for the matmul inside the forward pass,
    /// reused across layers and calls.
    weight_scratch: Vec<f64>,
}

impl BatchCache {
    /// Creates an empty cache; buffers are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The network output block (last activation), one sample per row.
    ///
    /// # Panics
    ///
    /// Panics if the cache has never been filled.
    #[allow(
        clippy::expect_used,
        reason = "a filled cache always holds the input activation"
    )]
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("cache is filled")
    }

    /// Ensures the buffer layout matches `net` at `batch` rows, reusing
    /// existing allocations when the shapes already agree.
    ///
    /// When the layout already matches this is allocation-free — the
    /// serving hot loop relies on that (a steady-state batch must not
    /// touch the heap at all).
    fn prepare(&mut self, net: &Mlp, batch: usize) {
        let n = net.layers.len();
        let matches = self.activations.len() == n + 1
            && self.pre_activations.len() == n
            && self.activations[0].shape() == (batch, net.input_dim())
            && net.layers.iter().enumerate().all(|(i, layer)| {
                let want = (batch, layer.output_dim());
                self.activations[i + 1].shape() == want && self.pre_activations[i].shape() == want
            });
        if matches {
            return;
        }
        let want_acts = n + 1;
        let mut dims = Vec::with_capacity(want_acts);
        dims.push(net.input_dim());
        dims.extend(net.layers.iter().map(Dense::output_dim));
        let fix = |bufs: &mut Vec<Matrix>, dims: &[usize]| {
            bufs.truncate(dims.len());
            for (i, &d) in dims.iter().enumerate() {
                if bufs.get(i).map(Matrix::shape) != Some((batch, d)) {
                    let m = Matrix::zeros(batch, d);
                    if i < bufs.len() {
                        bufs[i] = m;
                    } else {
                        bufs.push(m);
                    }
                }
            }
        };
        fix(&mut self.activations, &dims);
        fix(&mut self.pre_activations, &dims[1..]);
    }
}

impl Mlp {
    /// Builds a network from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive dimensions mismatch.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].output_dim(),
                w[1].input_dim(),
                "consecutive layer dimensions mismatch"
            );
        }
        Self { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output dimension.
    #[allow(
        clippy::expect_used,
        reason = "Mlp construction rejects empty layer lists"
    )]
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").output_dim()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layers (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// True when every weight and bias of `layer` is finite. Used by the
    /// debug finiteness guards: diverged training legitimately drives
    /// parameters to NaN, and such layers are exempt from the
    /// finite-in-finite-out invariant.
    fn layer_params_finite(layer: &Dense) -> bool {
        layer.weights().as_slice().iter().all(|v| v.is_finite())
            && layer.biases().iter().all(|v| v.is_finite())
    }

    /// Plain forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        // RL exploration legitimately evaluates policies on diverged
        // (non-finite) states, and diverged training legitimately breaks
        // weights, so the blow-up guard only fires when both the input
        // and the layer's own parameters are finite. The parameter scan
        // is behind the (normally true) activation check, so healthy
        // debug runs never pay for it.
        let input_finite = x.iter().all(|v| v.is_finite());
        let mut a = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            a = layer.forward(&a).1;
            debug_assert!(
                !input_finite
                    || a.iter().all(|v| v.is_finite())
                    || !Self::layer_params_finite(layer),
                "layer {i} produced a non-finite activation from finite input and parameters: {a:?}"
            );
        }
        a
    }

    /// Forward pass that records all intermediate values for [`Self::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    #[allow(
        clippy::expect_used,
        reason = "the input activation is pushed before the loop"
    )]
    pub fn forward_cached(&self, x: &[f64]) -> ForwardCache {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let input_finite = x.iter().all(|v| v.is_finite());
        activations.push(x.to_vec());
        for (i, layer) in self.layers.iter().enumerate() {
            let (z, a) = layer.forward(activations.last().expect("pushed above"));
            debug_assert!(
                !input_finite
                    || a.iter().all(|v| v.is_finite())
                    || !Self::layer_params_finite(layer),
                "layer {i} produced a non-finite activation from finite input and parameters: {a:?}"
            );
            pre_activations.push(z);
            activations.push(a);
        }
        ForwardCache {
            activations,
            pre_activations,
        }
    }

    /// Backpropagates `grad_output` (the loss gradient at the network
    /// output) through the cached forward pass.
    ///
    /// Accumulates parameter gradients into `grads` (scaled by `scale`,
    /// useful for minibatch averaging) and returns the gradient with
    /// respect to the network input.
    ///
    /// # Panics
    ///
    /// Panics if the cache or gradient dimensions do not match this network.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        grad_output: &[f64],
        grads: &mut GradStore,
        scale: f64,
    ) -> Vec<f64> {
        assert_eq!(
            grad_output.len(),
            self.output_dim(),
            "output gradient dimension mismatch"
        );
        assert_eq!(
            cache.pre_activations.len(),
            self.layers.len(),
            "cache layer count mismatch"
        );
        assert!(grads.matches(self), "gradient store shape mismatch");
        let boundary_finite = grad_output.iter().all(|v| v.is_finite())
            && cache.activations[0].iter().all(|v| v.is_finite());
        let mut grad = grad_output.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let x = &cache.activations[i];
            let z = &cache.pre_activations[i];
            let (gw, gb, gx) = layer.backward(x, z, &grad);
            grads.accumulate(i, &gw, &gb, scale);
            grad = gx;
            debug_assert!(
                !boundary_finite
                    || grad.iter().all(|v| v.is_finite())
                    || !Self::layer_params_finite(layer),
                "layer {i} produced a non-finite input gradient from finite boundary values"
            );
        }
        grad
    }

    /// Batched forward pass: one sample per row of `x`, one output per row
    /// of the result. Each row is bit-identical to [`Mlp::forward`] on the
    /// corresponding input row.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        let mut cache = BatchCache::new();
        self.forward_batch_cached(x, &mut cache);
        #[allow(clippy::expect_used, reason = "the cache was just filled")]
        cache.activations.pop().expect("cache is filled")
    }

    /// Batched forward pass recording all intermediate blocks into `cache`
    /// for [`Mlp::backward_batch`] / [`Mlp::input_gradient_batch`].
    ///
    /// Reuses the cache's scratch matrices when the batch size is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward_batch_cached(&self, x: &Matrix, cache: &mut BatchCache) {
        self.forward_batch_cached_kernel(x, cache, ForwardKernel::Exact);
    }

    /// [`Mlp::forward_batch_cached`] with an explicit activation kernel.
    ///
    /// [`ForwardKernel::Exact`] is the default contract (bit-identical to
    /// per-sample [`Mlp::forward`]); [`ForwardKernel::FastTanh`] serves the
    /// fast tier: same GEMM, [`crate::fast::fast_tanh`] in place of `tanh`,
    /// every output within the bundle's certified fast-tier error of the
    /// exact result. Training and admission re-derivation must stay on
    /// `Exact`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward_batch_cached_kernel(
        &self,
        x: &Matrix,
        cache: &mut BatchCache,
        kernel: ForwardKernel,
    ) {
        assert_eq!(x.cols(), self.input_dim(), "input dimension mismatch");
        cache.prepare(self, x.rows());
        let input_finite = x.as_slice().iter().all(|v| v.is_finite());
        cache.activations[0]
            .as_mut_slice()
            .copy_from_slice(x.as_slice());
        for (i, layer) in self.layers.iter().enumerate() {
            let (head, tail) = cache.activations.split_at_mut(i + 1);
            let a = &mut tail[0];
            layer.forward_batch_into_with_kernel(
                &head[i],
                &mut cache.pre_activations[i],
                a,
                &mut cache.weight_scratch,
                kernel,
            );
            debug_assert!(
                !input_finite
                    || a.as_slice().iter().all(|v| v.is_finite())
                    || !Self::layer_params_finite(layer),
                "layer {i} produced a non-finite activation from finite input and parameters"
            );
        }
    }

    /// Batched counterpart of [`Mlp::backward`]: backpropagates a block of
    /// per-row output gradients through the cached batched forward pass.
    ///
    /// Parameter gradients are summed over the batch and accumulated into
    /// `grads` scaled by `scale` (pass `1.0 / batch` for a minibatch mean).
    /// Returns the per-row gradients with respect to the network input.
    /// Agrees with per-sample [`Mlp::backward`] accumulation to floating-point
    /// round-off (the batched path applies `scale` once to each summed
    /// gradient instead of per sample).
    ///
    /// # Panics
    ///
    /// Panics if the cache or gradient dimensions do not match this network.
    pub fn backward_batch(
        &self,
        cache: &BatchCache,
        grad_output: &Matrix,
        grads: &mut GradStore,
        scale: f64,
    ) -> Matrix {
        assert_eq!(
            grad_output.cols(),
            self.output_dim(),
            "output gradient dimension mismatch"
        );
        assert_eq!(
            cache.pre_activations.len(),
            self.layers.len(),
            "cache layer count mismatch"
        );
        assert!(grads.matches(self), "gradient store shape mismatch");
        let mut grad = grad_output.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (gw, gb, gx) = layer.backward_batch(
                &cache.activations[i],
                &cache.pre_activations[i],
                &cache.activations[i + 1],
                &grad,
            );
            grads.accumulate(i, &gw, &gb, scale);
            grad = gx;
        }
        grad
    }

    /// Batched counterpart of [`Mlp::input_gradient`], reading the forward
    /// pass from `cache` so FGSM-style callers pay for one forward only.
    /// Skips the parameter-gradient products entirely.
    ///
    /// # Panics
    ///
    /// Panics if the cache or gradient dimensions do not match this network.
    pub fn input_gradient_batch(&self, cache: &BatchCache, grad_output: &Matrix) -> Matrix {
        assert_eq!(
            grad_output.cols(),
            self.output_dim(),
            "output gradient dimension mismatch"
        );
        assert_eq!(
            cache.pre_activations.len(),
            self.layers.len(),
            "cache layer count mismatch"
        );
        let mut grad = grad_output.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let delta =
                layer.delta_batch(&cache.pre_activations[i], &cache.activations[i + 1], &grad);
            grad = delta.matmul(layer.weights());
        }
        grad
    }

    /// Gradient of the scalar function `v ↦ grad_output · f(v)` with respect
    /// to the input, without touching parameter gradients. This is the
    /// primitive behind FGSM and DDPG's actor update.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn input_gradient(&self, x: &[f64], grad_output: &[f64]) -> Vec<f64> {
        let cache = self.forward_cached(x);
        let mut grad = grad_output.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (_, _, gx) =
                layer.backward(&cache.activations[i], &cache.pre_activations[i], &grad);
            grad = gx;
        }
        grad
    }

    /// Sound output bounds over a state box via interval bound propagation.
    ///
    /// # Panics
    ///
    /// Panics if `region.dim() != self.input_dim()`.
    pub fn bounds(&self, region: &BoxRegion) -> Vec<Interval> {
        assert_eq!(region.dim(), self.input_dim(), "region dimension mismatch");
        let mut iv: Vec<Interval> = region.intervals().to_vec();
        for layer in &self.layers {
            iv = layer.forward_interval(&iv);
        }
        iv
    }

    /// The paper's footnote-1 Lipschitz bound: the product of each layer's
    /// `factor(σ) · ‖W‖` (spectral norm).
    pub fn lipschitz_constant(&self) -> f64 {
        self.layers.iter().map(Dense::lipschitz_bound).product()
    }

    /// Sum of squared weights and biases — the `‖q‖²` regularizer of the
    /// robust-distillation objective.
    pub fn weight_norm_sq(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| {
                l.weights().as_slice().iter().map(|w| w * w).sum::<f64>()
                    + l.biases().iter().map(|b| b * b).sum::<f64>()
            })
            .sum()
    }

    /// Serializes the network to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns an error when any weight or bias is non-finite: the JSON
    /// writer would emit bare `NaN` / `Infinity` literals that strict JSON
    /// consumers (and the artifact-bundle loader) reject, so the refusal
    /// happens here, where the offending layer can still be named.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        for (i, layer) in self.layers.iter().enumerate() {
            if !Self::layer_params_finite(layer) {
                return Err(serde::DeError::custom(format!(
                    "layer {i} holds a non-finite weight or bias; refusing to emit \
                     unparseable bare NaN/Infinity JSON literals"
                ))
                .into());
            }
        }
        serde_json::to_string(self)
    }

    /// Deserializes a network from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl fmt::Display for Mlp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mlp({}", self.input_dim())?;
        for layer in &self.layers {
            write!(f, " → {}[{}]", layer.output_dim(), layer.activation())?;
        }
        write!(f, ")")
    }
}

/// Builder for [`Mlp`] with seeded Xavier-uniform initialization.
///
/// # Examples
///
/// ```
/// use cocktail_nn::{Activation, MlpBuilder};
///
/// let net = MlpBuilder::new(4)
///     .hidden(32, Activation::Relu)
///     .hidden(32, Activation::Relu)
///     .output(2, Activation::Tanh)
///     .seed(99)
///     .build();
/// assert_eq!(net.layers().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    spec: Vec<(usize, Activation)>,
    seed: u64,
    init_scale: f64,
}

impl MlpBuilder {
    /// Starts a builder for a network with `input_dim` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`.
    pub fn new(input_dim: usize) -> Self {
        assert!(input_dim > 0, "input dimension must be positive");
        Self {
            input_dim,
            spec: Vec::new(),
            seed: 0,
            init_scale: 1.0,
        }
    }

    /// Appends a hidden layer of `width` units.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn hidden(mut self, width: usize, activation: Activation) -> Self {
        assert!(width > 0, "layer width must be positive");
        self.spec.push((width, activation));
        self
    }

    /// Appends the output layer. Alias of [`Self::hidden`] kept for
    /// call-site readability.
    pub fn output(self, width: usize, activation: Activation) -> Self {
        self.hidden(width, activation)
    }

    /// Sets the RNG seed for initialization (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales the Xavier initialization amplitude (default 1.0). Small
    /// scales give low-Lipschitz starting points for distillation.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn init_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "init scale must be positive");
        self.init_scale = scale;
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if no layer was added.
    pub fn build(self) -> Mlp {
        assert!(!self.spec.is_empty(), "network needs at least one layer");
        let mut rng = cocktail_math::rng::seeded(self.seed);
        let mut layers = Vec::with_capacity(self.spec.len());
        let mut fan_in = self.input_dim;
        for (width, activation) in self.spec {
            let bound = self.init_scale * (6.0 / (fan_in + width) as f64).sqrt();
            let weights = Matrix::from_fn(width, fan_in, |_, _| rng.gen_range(-bound..=bound));
            let biases = vec![0.0; width];
            layers.push(Dense::from_parts(weights, biases, activation));
            fan_in = width;
        }
        Mlp::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use cocktail_math::vector;

    fn net() -> Mlp {
        MlpBuilder::new(2)
            .hidden(5, Activation::Tanh)
            .hidden(4, Activation::Sigmoid)
            .output(2, Activation::Identity)
            .seed(42)
            .build()
    }

    #[test]
    fn builder_shapes() {
        let n = net();
        assert_eq!(n.input_dim(), 2);
        assert_eq!(n.output_dim(), 2);
        assert_eq!(n.layers().len(), 3);
        assert_eq!(n.param_count(), 2 * 5 + 5 + 5 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn forward_cached_matches_forward() {
        let n = net();
        let x = [0.3, -0.8];
        let cache = n.forward_cached(&x);
        assert_eq!(cache.output(), n.forward(&x).as_slice());
        assert_eq!(cache.activations.len(), 4);
        assert_eq!(cache.pre_activations.len(), 3);
    }

    #[test]
    fn deterministic_from_seed() {
        let a = net();
        let b = net();
        assert_eq!(a, b);
        let c = MlpBuilder::new(2)
            .hidden(5, Activation::Tanh)
            .hidden(4, Activation::Sigmoid)
            .output(2, Activation::Identity)
            .seed(43)
            .build();
        assert_ne!(a, c);
    }

    #[test]
    fn forward_batch_rows_match_per_sample_bitwise() {
        let n = net();
        let xs: Vec<Vec<f64>> = (0..7)
            .map(|i| vec![i as f64 / 3.5 - 1.0, 0.8 - i as f64 / 4.0])
            .collect();
        let x = Matrix::from_rows(xs.clone());
        let out = n.forward_batch(&x);
        for (r, xr) in xs.iter().enumerate() {
            assert_eq!(out.row(r), n.forward(xr).as_slice(), "row {r}");
        }
    }

    #[test]
    fn batch_cache_reuse_does_not_change_results() {
        let n = net();
        let x1 = Matrix::from_rows(vec![vec![0.1, -0.2], vec![0.5, 0.5]]);
        let x2 = Matrix::from_rows(vec![vec![-0.7, 0.9], vec![0.0, 0.3]]);
        let mut cache = BatchCache::new();
        n.forward_batch_cached(&x1, &mut cache);
        n.forward_batch_cached(&x2, &mut cache);
        assert_eq!(cache.output(), &n.forward_batch(&x2));
        // Changing the batch size reallocates cleanly.
        let x3 = Matrix::from_rows(vec![vec![0.25, 0.75]]);
        n.forward_batch_cached(&x3, &mut cache);
        assert_eq!(cache.output().row(0), n.forward(&[0.25, 0.75]).as_slice());
    }

    #[test]
    fn backward_batch_matches_per_sample_accumulation() {
        let n = net();
        let xs: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![(i as f64).sin(), (i as f64 * 0.7).cos()])
            .collect();
        let targets: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![0.1 * i as f64, -0.2 * i as f64])
            .collect();
        let scale = 1.0 / xs.len() as f64;

        let mut ref_grads = GradStore::zeros_like(&n);
        let mut ref_gx = Vec::new();
        for (x, t) in xs.iter().zip(&targets) {
            let cache = n.forward_cached(x);
            let g = loss::mse_gradient(cache.output(), t);
            ref_gx.push(n.backward(&cache, &g, &mut ref_grads, scale));
        }

        let x = Matrix::from_rows(xs.clone());
        let mut cache = BatchCache::new();
        n.forward_batch_cached(&x, &mut cache);
        let mut g = Matrix::zeros(xs.len(), 2);
        for (r, t) in targets.iter().enumerate() {
            let gr = loss::mse_gradient(cache.output().row(r), t);
            g.row_mut(r).copy_from_slice(&gr);
        }
        let mut batch_grads = GradStore::zeros_like(&n);
        let gx = n.backward_batch(&cache, &g, &mut batch_grads, scale);

        for li in 0..n.layers().len() {
            for (a, b) in batch_grads
                .weight(li)
                .as_slice()
                .iter()
                .zip(ref_grads.weight(li).as_slice())
            {
                assert!((a - b).abs() < 1e-12, "layer {li} weight grad: {a} vs {b}");
            }
            for (a, b) in batch_grads.bias(li).iter().zip(ref_grads.bias(li)) {
                assert!((a - b).abs() < 1e-12, "layer {li} bias grad: {a} vs {b}");
            }
        }
        for (r, gxr) in ref_gx.iter().enumerate() {
            for (a, b) in gx.row(r).iter().zip(gxr) {
                assert!((a - b).abs() < 1e-12, "input grad row {r}");
            }
        }
    }

    #[test]
    fn input_gradient_batch_matches_per_sample() {
        let n = net();
        let xs = vec![vec![0.4, 0.1], vec![-0.6, 0.9], vec![0.0, 0.0]];
        let gs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, -0.5]];
        let x = Matrix::from_rows(xs.clone());
        let mut cache = BatchCache::new();
        n.forward_batch_cached(&x, &mut cache);
        let g = Matrix::from_rows(gs.clone());
        let gx = n.input_gradient_batch(&cache, &g);
        for (r, (xr, gr)) in xs.iter().zip(&gs).enumerate() {
            let single = n.input_gradient(xr, gr);
            for (a, b) in gx.row(r).iter().zip(&single) {
                assert!((a - b).abs() < 1e-12, "row {r}");
            }
        }
    }

    #[test]
    fn backward_parameter_gradients_match_finite_differences() {
        let n = net();
        let x = [0.4, 0.1];
        let target = [0.25, -0.5];
        let mut grads = GradStore::zeros_like(&n);
        let cache = n.forward_cached(&x);
        let grad_out = loss::mse_gradient(cache.output(), &target);
        n.backward(&cache, &grad_out, &mut grads, 1.0);

        let h = 1e-6;
        let loss_of = |net: &Mlp| loss::mse(&net.forward(&x), &target);
        for li in 0..n.layers().len() {
            let rows = n.layers()[li].weights().rows();
            let cols = n.layers()[li].weights().cols();
            for r in 0..rows {
                for c in 0..cols {
                    let mut p = n.clone();
                    p.layers_mut()[li].weights_mut()[(r, c)] += h;
                    let mut m = n.clone();
                    m.layers_mut()[li].weights_mut()[(r, c)] -= h;
                    let fd = (loss_of(&p) - loss_of(&m)) / (2.0 * h);
                    let an = grads.weight(li)[(r, c)];
                    assert!((fd - an).abs() < 1e-5, "layer {li} w[{r}{c}]: {fd} vs {an}");
                }
            }
            for b in 0..n.layers()[li].biases().len() {
                let mut p = n.clone();
                p.layers_mut()[li].biases_mut()[b] += h;
                let mut m = n.clone();
                m.layers_mut()[li].biases_mut()[b] -= h;
                let fd = (loss_of(&p) - loss_of(&m)) / (2.0 * h);
                let an = grads.bias(li)[b];
                assert!((fd - an).abs() < 1e-5, "layer {li} b[{b}]: {fd} vs {an}");
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let n = net();
        let x = [0.4, 0.1];
        let target = [0.25, -0.5];
        let cache = n.forward_cached(&x);
        let grad_out = loss::mse_gradient(cache.output(), &target);
        let gx = n.input_gradient(&x, &grad_out);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (loss::mse(&n.forward(&xp), &target) - loss::mse(&n.forward(&xm), &target))
                / (2.0 * h);
            assert!((fd - gx[i]).abs() < 1e-5, "input[{i}]: {fd} vs {}", gx[i]);
        }
    }

    #[test]
    fn bounds_contain_sampled_outputs() {
        let n = net();
        let region = BoxRegion::cube(2, -1.0, 1.0);
        let bounds = n.bounds(&region);
        let mut rng = cocktail_math::rng::seeded(5);
        for _ in 0..200 {
            let x = cocktail_math::rng::uniform_in_box(&mut rng, &region);
            let y = n.forward(&x);
            for (yi, bi) in y.iter().zip(&bounds) {
                assert!(bi.inflate(1e-10).contains(*yi));
            }
        }
    }

    #[test]
    fn lipschitz_constant_dominates_sampled_slopes() {
        let n = net();
        let lc = n.lipschitz_constant();
        let mut rng = cocktail_math::rng::seeded(9);
        let region = BoxRegion::cube(2, -2.0, 2.0);
        for _ in 0..100 {
            let a = cocktail_math::rng::uniform_in_box(&mut rng, &region);
            let b = cocktail_math::rng::uniform_in_box(&mut rng, &region);
            let dx = vector::norm_2(&vector::sub(&a, &b));
            if dx < 1e-9 {
                continue;
            }
            let dy = vector::norm_2(&vector::sub(&n.forward(&a), &n.forward(&b)));
            assert!(dy <= lc * dx * (1.0 + 1e-9) + 1e-12);
        }
    }

    #[test]
    fn json_roundtrip_preserves_network() {
        let n = net();
        let json = n.to_json().expect("serialize");
        let back = Mlp::from_json(&json).expect("deserialize");
        assert_eq!(n, back);
    }

    #[test]
    fn weight_norm_sq_is_positive_for_random_net() {
        assert!(net().weight_norm_sq() > 0.0);
    }

    #[test]
    fn to_json_refuses_non_finite_parameters() {
        // A NaN weight must be an explicit error, not a bare NaN literal
        // that only fails later in a strict parser.
        let mut broken = net();
        broken.layers_mut()[1].weights_mut()[(0, 0)] = f64::NAN;
        let err = broken.to_json().expect_err("NaN weight rejected");
        assert!(err.to_string().contains("layer 1"), "{err}");

        let mut inf_bias = net();
        inf_bias.layers_mut()[0].biases_mut()[2] = f64::INFINITY;
        assert!(inf_bias.to_json().is_err());

        // the healthy network still round-trips exactly
        let n = net();
        let back = Mlp::from_json(&n.to_json().expect("finite net serializes"))
            .expect("round trip parses");
        assert_eq!(n, back);
    }

    #[test]
    fn display_mentions_architecture() {
        let s = net().to_string();
        assert!(s.contains("tanh") && s.contains("sigmoid"));
    }

    #[test]
    #[should_panic(expected = "dimensions mismatch")]
    fn mismatched_layers_panic() {
        let l1 = Dense::from_parts(Matrix::identity(2), vec![0.0; 2], Activation::Relu);
        let l2 = Dense::from_parts(Matrix::identity(3), vec![0.0; 3], Activation::Relu);
        Mlp::from_layers(vec![l1, l2]);
    }
}
