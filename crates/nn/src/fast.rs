//! Bounded-error fast `tanh` kernels and the forward-kernel switch.
//!
//! The serving profile (DESIGN.md §10) shows a 2-24-24-1 forward spending
//! ~65 % of its time inside `libm` tanh — the "tanh floor" that caps the
//! batched-forward speedup below 2×. This module supplies the replacement:
//! a clamped rational approximation of `tanh` (the `[11/10]` Padé
//! approximant, i.e. the Lambert continued fraction truncated at
//! denominator 21) in both `f64` and `f32`, together with a
//! **machine-checked certificate** that its error never exceeds
//! [`FAST_TANH_EPS`] / [`FAST_TANH_F32_EPS`] anywhere on ℝ.
//!
//! The certificate is computed by [`certified_fast_tanh_bound`] using the
//! outwardly-rounded interval arithmetic of `cocktail-math`: a centered
//! form per subdivision cell (`|err(x)| ≤ |err(c)| + r · sup|err′|`, with
//! the derivative enclosed by interval evaluation) plus a closed-form tail
//! bound beyond the clamp point. Training, admission re-derivation and the
//! default serving tier stay on exact `tanh`; the fast kernels are opt-in
//! via [`ForwardKernel`] and their error budget is folded into the
//! `ControllerBundle` fast-tier certificate checked at admission.

use cocktail_math::Interval;

/// Arguments beyond `±FAST_TANH_CLAMP` are clamped before the rational is
/// evaluated; the tail error `1 - tanh(7.5) ≈ 6.1e-7` is part of the
/// certified bound.
pub const FAST_TANH_CLAMP: f64 = 7.5;

/// Certified sup-norm error of [`fast_tanh`] against exact `tanh` over all
/// of ℝ. The test suite machine-checks `certified_fast_tanh_bound(..) <=
/// FAST_TANH_EPS`; the scanned true error is ≈ `3.92e-7` and the certified
/// bound at 2¹⁶ cells is ≈ `4.11e-7` — the small gap is the centered
/// form's per-cell interval overestimation.
pub const FAST_TANH_EPS: f64 = 5.0e-7;

/// Additional error allowance for evaluating the same rational in `f32`
/// ([`fast_tanh_f32`]) on an `f32` argument, against `tanh` of that
/// argument. Forward error analysis of the Horner forms (all-positive
/// coefficients, `y = x² ≥ 0`, so no cancellation: the relative condition
/// number of each Horner sum is 1) bounds the evaluation error by
/// `~20 u₃₂ ≈ 1.2e-6` relative, `|result| ≤ 1`, plus one final rounding to
/// `f32`; `4e-6` covers it with > 3× margin, and a dense sampled test
/// checks the margin empirically.
pub const FAST_TANH_F32_SLACK: f64 = 4.0e-6;

/// Certified sup-norm error of [`fast_tanh_f32`] against exact `tanh`.
pub const FAST_TANH_F32_EPS: f64 = FAST_TANH_EPS + FAST_TANH_F32_SLACK;

// [11/10] Padé of tanh: tanh x ≈ x·P(x²)/Q(x²). Integer coefficients from
// the Lambert continued fraction x/(1+x²/(3+x²/(5+…+x²/21))); exactly
// representable in f64 (all < 2⁵³).
const P0: f64 = 13_749_310_575.0;
const P1: f64 = 1_964_187_225.0;
const P2: f64 = 64_324_260.0;
const P3: f64 = 675_675.0;
const P4: f64 = 2_145.0;
const P5: f64 = 1.0;
const Q0: f64 = 13_749_310_575.0;
const Q1: f64 = 6_547_290_750.0;
const Q2: f64 = 413_513_100.0;
const Q3: f64 = 7_567_560.0;
const Q4: f64 = 45_045.0;
const Q5: f64 = 66.0;

/// The unclamped rational `x·P(x²)/Q(x²)` — shared by the kernel and the
/// certifier so the certificate speaks about the shipped code path.
#[inline]
fn rational(x: f64) -> f64 {
    let y = x * x;
    let p = ((((P5 * y + P4) * y + P3) * y + P2) * y + P1) * y + P0;
    let q = ((((Q5 * y + Q4) * y + Q3) * y + Q2) * y + Q1) * y + Q0;
    x * p / q
}

/// Fast `tanh`: clamped `[11/10]` Padé rational with certified error
/// `≤` [`FAST_TANH_EPS`] everywhere (NaN propagates).
///
/// The output clamp to `[-1, 1]` keeps the kernel inside tanh's codomain —
/// and can only shrink the error, since projecting onto an interval that
/// contains the true value never moves the approximation away from it.
#[inline]
pub fn fast_tanh(x: f64) -> f64 {
    let x = x.clamp(-FAST_TANH_CLAMP, FAST_TANH_CLAMP);
    rational(x).clamp(-1.0, 1.0)
}

/// `f32` fast `tanh`: same rational, evaluated in `f32`, with certified
/// error `≤` [`FAST_TANH_F32_EPS`] against exact (`f64`) `tanh` of the
/// argument.
#[inline]
pub fn fast_tanh_f32(x: f32) -> f32 {
    const C: f32 = FAST_TANH_CLAMP as f32;
    let x = x.clamp(-C, C);
    let y = x * x;
    let p = ((((P5 as f32 * y + P4 as f32) * y + P3 as f32) * y + P2 as f32) * y + P1 as f32) * y
        + P0 as f32;
    let q = ((((Q5 as f32 * y + Q4 as f32) * y + Q3 as f32) * y + Q2 as f32) * y + Q1 as f32) * y
        + Q0 as f32;
    (x * p / q).clamp(-1.0, 1.0)
}

/// Relative inflation applied to every interval enclosure the certifier
/// computes with round-to-nearest endpoint arithmetic: each endpoint op
/// rounds by ≤ 0.5 ulp (`~1.1e-16` relative) and the deepest expression
/// chains ~40 ops (`≤ 5e-15`), so `1e-12` covers the accumulated rounding
/// with > 100× margin.
const CERT_REL_SLOP: f64 = 1e-12;

/// Absolute slop added to the center-point error samples: `err(c)` is
/// computed in round-to-nearest `f64` with ≤ `~6e-15` absolute error
/// (values ≤ 1 after the final divide, faithfully-rounded `tanh`);
/// `1e-13` covers it with > 15× margin.
const CERT_ABS_SLOP: f64 = 1e-13;

/// Interval Horner evaluation of a polynomial with the given descending
/// coefficients over `y`.
fn poly_interval(coeffs_desc: &[f64], y: Interval) -> Interval {
    let mut acc = Interval::point(coeffs_desc[0]);
    for &c in &coeffs_desc[1..] {
        acc = acc * y + Interval::point(c);
    }
    acc
}

/// Inflates an enclosure outward to absorb its round-to-nearest endpoint
/// arithmetic.
fn slopped(iv: Interval) -> Interval {
    iv.inflate(CERT_REL_SLOP * iv.mag() + f64::MIN_POSITIVE)
}

/// Computes a **sound upper bound** on `sup_{x ∈ ℝ} |fast_tanh(x) -
/// tanh(x)|` by subdividing `[-FAST_TANH_CLAMP, FAST_TANH_CLAMP]` into
/// `cells` cells and applying the centered form on each:
///
/// `|err(x)| ≤ |err(c)| + r · mag(E′(X))`
///
/// where `E′(X)` is an interval enclosure of the error derivative
/// `[P·Q + 2y(P′Q − P·Q′)]/Q² − (1 − tanh²x)` over the cell (sound interval
/// `tanh`, algebraic ops inflated by [`CERT_REL_SLOP`]). Beyond the clamp
/// the kernel is constant, so the tail error is bounded by
/// `max(|F_C - tanh(C)|, |F_C - 1|)` with `F_C` an enclosure of the
/// rational at the clamp point. The output clamp of [`fast_tanh`] only
/// shrinks the error, so the bound on the unclamped rational covers the
/// shipped kernel.
///
/// # Panics
///
/// Panics if `cells == 0`.
pub fn certified_fast_tanh_bound(cells: usize) -> f64 {
    assert!(cells > 0, "need at least one certification cell");
    let p_desc = [P5, P4, P3, P2, P1, P0];
    let q_desc = [Q5, Q4, Q3, Q2, Q1, Q0];
    // dP/dy, dQ/dy (descending)
    let dp_desc = [5.0 * P5, 4.0 * P4, 3.0 * P3, 2.0 * P2, P1];
    let dq_desc = [5.0 * Q5, 4.0 * Q4, 3.0 * Q3, 2.0 * Q2, Q1];

    let c = FAST_TANH_CLAMP;
    let width = 2.0 * c / cells as f64;
    let mut worst: f64 = 0.0;
    for i in 0..cells {
        let lo = -c + i as f64 * width;
        let hi = if i + 1 == cells { c } else { lo + width };
        let x = Interval::new(lo, hi);
        let y = slopped(x.square());
        let p = slopped(poly_interval(&p_desc, y));
        let q = slopped(poly_interval(&q_desc, y));
        let dp = slopped(poly_interval(&dp_desc, y));
        let dq = slopped(poly_interval(&dq_desc, y));
        // d/dx [x·P/Q] = (P·Q + 2y·(P′Q − P·Q′)) / Q²
        let num = slopped(p * q + (y * Interval::point(2.0)) * (dp * q - p * dq));
        let fast_slope = slopped(num / slopped(q * q));
        let t = x.tanh();
        let tanh_slope = Interval::point(1.0) - slopped(t * t);
        let err_slope = slopped(fast_slope - tanh_slope);
        let mid = 0.5 * (lo + hi);
        let center_err = (rational(mid) - mid.tanh()).abs() + CERT_ABS_SLOP;
        let radius = 0.5 * (hi - lo);
        worst = worst.max(center_err + radius * err_slope.mag());
    }
    // tail: for |x| ≥ C the kernel outputs fast_tanh(±C) while tanh(x)
    // sweeps [tanh(C), 1); both distances from the enclosure F_C bound it
    let xc = Interval::point(c);
    let yc = slopped(xc.square());
    let fc =
        slopped(xc * slopped(poly_interval(&p_desc, yc)) / slopped(poly_interval(&q_desc, yc)));
    let tc = xc.tanh();
    let tail = slopped(fc - tc)
        .mag()
        .max(slopped(fc - Interval::point(1.0)).mag());
    worst.max(tail)
}

/// Which activation kernel a batched forward uses.
///
/// `Exact` is the training/verification contract: bit-identical to the
/// per-sample [`crate::Mlp::forward`]. `FastTanh` substitutes
/// [`fast_tanh`] for `tanh` activations only (every other activation stays
/// exact), trading `≤` [`FAST_TANH_EPS`] per hidden unit for the removal
/// of the libm tanh floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardKernel {
    /// Exact `libm` activations — bit-identical to the per-sample path.
    #[default]
    Exact,
    /// [`fast_tanh`] in place of `tanh`; all other activations exact.
    FastTanh,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_bounds_the_constant() {
        let bound = certified_fast_tanh_bound(1 << 16);
        assert!(
            bound <= FAST_TANH_EPS,
            "certified bound {bound:.3e} exceeds FAST_TANH_EPS {FAST_TANH_EPS:.3e}"
        );
        assert!(bound > 0.0 && bound.is_finite());
    }

    #[test]
    fn certificate_is_monotone_under_refinement() {
        // finer subdivision can only tighten the centered form
        let coarse = certified_fast_tanh_bound(1 << 10);
        let fine = certified_fast_tanh_bound(1 << 14);
        assert!(
            fine <= coarse,
            "refinement loosened the bound: {fine} > {coarse}"
        );
    }

    #[test]
    fn fast_tanh_error_within_eps_sampled() {
        use rand::Rng;
        let mut rng = cocktail_math::rng::seeded(0xfa57);
        for _ in 0..200_000 {
            let x: f64 = rng.gen_range(-40.0..40.0);
            let err = (fast_tanh(x) - x.tanh()).abs();
            assert!(err <= FAST_TANH_EPS, "fast_tanh({x}) error {err:.3e}");
        }
        // saturation and odd symmetry
        assert_eq!(fast_tanh(1e6), 1.0_f64.min(fast_tanh(1e6)));
        for x in [0.0, 0.3, 2.0, 7.4, 100.0] {
            assert_eq!(fast_tanh(-x), -fast_tanh(x), "odd symmetry at {x}");
        }
        assert!(fast_tanh(f64::NAN).is_nan());
    }

    #[test]
    fn fast_tanh_f32_error_within_eps_sampled() {
        use rand::Rng;
        let mut rng = cocktail_math::rng::seeded(0xfa32);
        for _ in 0..200_000 {
            let x = rng.gen_range(-40.0_f64..40.0) as f32;
            let err = (f64::from(fast_tanh_f32(x)) - f64::from(x).tanh()).abs();
            assert!(
                err <= FAST_TANH_F32_EPS,
                "fast_tanh_f32({x}) error {err:.3e}"
            );
            // and the f32 evaluation stays well inside its analytic slack
            let eval_drift = (f64::from(fast_tanh_f32(x)) - fast_tanh(f64::from(x))).abs();
            assert!(
                eval_drift <= FAST_TANH_F32_SLACK / 2.0,
                "f32 evaluation drift {eval_drift:.3e} eats the slack margin at {x}"
            );
        }
        assert!((-1.0..=1.0).contains(&fast_tanh_f32(123.0)));
    }

    #[test]
    fn fast_tanh_is_monotone_on_a_grid() {
        // not required for the error certificate, but the serving tier
        // relies on the kernel being sane: non-decreasing on a dense grid
        let mut prev = -2.0;
        for i in 0..=100_000 {
            let x = -10.0 + 20.0 * i as f64 / 100_000.0;
            let y = fast_tanh(x);
            assert!(y >= prev, "fast_tanh not monotone at {x}");
            prev = y;
        }
    }
}
