//! Feed-forward neural networks with backpropagation, input gradients,
//! optimizers and Lipschitz analysis.
//!
//! This crate replaces `PyTorch` for the Cocktail reproduction. It provides
//! exactly what the paper's pipeline needs:
//!
//! * [`Mlp`] — a multi-layer perceptron over `f64` with `ReLU` / Tanh /
//!   Sigmoid / Identity activations, a cached forward pass, full
//!   backpropagation for parameter gradients **and input gradients** (the
//!   FGSM step of Algorithm 1 needs `∇_s ℓ(κ*(s), u)`);
//! * [`optimizer::Adam`] and [`optimizer::Sgd`] — the update rules used for
//!   expert cloning, PPO/DDPG and distillation;
//! * [`loss`] — mean-squared-error regression loss with gradients;
//! * [`lipschitz`] — the paper's footnote-1 Lipschitz bound (product of
//!   per-layer operator norms, with the Sigmoid ¼ factor);
//! * interval bound propagation ([`Mlp::bounds`]) used by the verification
//!   crate to enclose a controller's output over a state box.
//!
//! # Examples
//!
//! Train a tiny network to regress `y = 2x` and check it generalizes:
//!
//! ```
//! use cocktail_nn::{Activation, MlpBuilder};
//! use cocktail_nn::train::{fit_regression, TrainConfig};
//!
//! let mut net = MlpBuilder::new(1)
//!     .hidden(8, Activation::Tanh)
//!     .output(1, Activation::Identity)
//!     .seed(7)
//!     .build();
//! let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 32.0 - 1.0]).collect();
//! let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
//! fit_regression(&mut net, &xs, &ys, &TrainConfig { epochs: 400, ..TrainConfig::default() });
//! let out = net.forward(&[0.25]);
//! assert!((out[0] - 0.5).abs() < 0.1);
//! ```

pub mod activation;
pub mod f32tier;
pub mod fast;
pub mod layer;
pub mod lipschitz;
pub mod loss;
pub mod mlp;
pub mod optimizer;
pub mod train;

pub use activation::Activation;
pub use f32tier::{certify_fast_tier, BatchCacheF32, FastTierCert, MlpF32};
pub use fast::{fast_tanh, fast_tanh_f32, ForwardKernel, FAST_TANH_EPS, FAST_TANH_F32_EPS};
pub use layer::Dense;
pub use mlp::{BatchCache, Mlp, MlpBuilder};
pub use optimizer::{Adam, GradStore, Optimizer, Sgd};
