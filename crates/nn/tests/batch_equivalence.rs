//! Batched-vs-per-sample equivalence on the network shapes the three
//! benchmark systems actually train (Table 1 students: state dim 2 for the
//! oscillator, 3 for the polynomial system, 4 for cart-pole, each with two
//! 24-unit tanh hidden layers and a 1-dimensional control output).

use cocktail_math::Matrix;
use cocktail_nn::mlp::BatchCache;
use cocktail_nn::{loss, Activation, GradStore, MlpBuilder};

const TOL: f64 = 1e-12;

fn student(input_dim: usize, seed: u64) -> cocktail_nn::Mlp {
    MlpBuilder::new(input_dim)
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(seed)
        .build()
}

fn sample_inputs(dim: usize, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 7 + d * 13) % 23) as f64 / 11.5 - 1.0)
                .collect()
        })
        .collect()
}

#[test]
fn forward_batch_matches_per_sample_on_all_system_shapes() {
    for (dim, seed) in [(2usize, 10u64), (3, 11), (4, 12)] {
        let net = student(dim, seed);
        let xs = sample_inputs(dim, 64);
        let out = net.forward_batch(&Matrix::from_rows(xs.clone()));
        for (r, xr) in xs.iter().enumerate() {
            let single = net.forward(xr);
            for (a, b) in out.row(r).iter().zip(&single) {
                assert!(
                    (a - b).abs() <= TOL,
                    "dim {dim} row {r}: batched {a} vs per-sample {b}"
                );
            }
        }
    }
}

#[test]
fn backward_batch_matches_per_sample_on_all_system_shapes() {
    for (dim, seed) in [(2usize, 20u64), (3, 21), (4, 22)] {
        let net = student(dim, seed);
        let xs = sample_inputs(dim, 32);
        let targets: Vec<Vec<f64>> = (0..32).map(|i| vec![(i as f64 * 0.37).sin()]).collect();
        let scale = 1.0 / xs.len() as f64;

        let mut ref_grads = GradStore::zeros_like(&net);
        let mut ref_gx = Vec::new();
        for (x, t) in xs.iter().zip(&targets) {
            let cache = net.forward_cached(x);
            let g = loss::mse_gradient(cache.output(), t);
            ref_gx.push(net.backward(&cache, &g, &mut ref_grads, scale));
        }

        let x = Matrix::from_rows(xs.clone());
        let mut cache = BatchCache::new();
        net.forward_batch_cached(&x, &mut cache);
        let mut g = Matrix::zeros(xs.len(), 1);
        for (r, t) in targets.iter().enumerate() {
            g.row_mut(r)
                .copy_from_slice(&loss::mse_gradient(cache.output().row(r), t));
        }
        let mut batch_grads = GradStore::zeros_like(&net);
        let gx = net.backward_batch(&cache, &g, &mut batch_grads, scale);

        for li in 0..net.layers().len() {
            for (a, b) in batch_grads
                .weight(li)
                .as_slice()
                .iter()
                .zip(ref_grads.weight(li).as_slice())
            {
                assert!((a - b).abs() <= TOL, "dim {dim} layer {li} weight grad");
            }
            for (a, b) in batch_grads.bias(li).iter().zip(ref_grads.bias(li)) {
                assert!((a - b).abs() <= TOL, "dim {dim} layer {li} bias grad");
            }
        }
        for (r, gxr) in ref_gx.iter().enumerate() {
            for (a, b) in gx.row(r).iter().zip(gxr) {
                assert!((a - b).abs() <= TOL, "dim {dim} input grad row {r}");
            }
        }
    }
}
