//! Property-based tests for the neural-network substrate.
//!
//! The two invariants the rest of the pipeline leans on hardest:
//! the Lipschitz product bound really bounds sampled difference quotients,
//! and interval bound propagation really encloses sampled outputs.

use cocktail_math::{rng, vector, BoxRegion};
use cocktail_nn::lipschitz::{empirical_lower_bound, upper_bound, NormKind};
use cocktail_nn::{Activation, Mlp, MlpBuilder};
use proptest::prelude::*;

fn random_net(seed: u64, hidden: usize, act_pick: u8) -> Mlp {
    let act = match act_pick % 3 {
        0 => Activation::Tanh,
        1 => Activation::Relu,
        _ => Activation::Sigmoid,
    };
    MlpBuilder::new(2)
        .hidden(hidden, act)
        .hidden(hidden, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(seed)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lipschitz_bound_holds_on_samples(seed in 0u64..1000, hidden in 2usize..12, act in 0u8..3) {
        let net = random_net(seed, hidden, act);
        let region = BoxRegion::cube(2, -2.0, 2.0);
        let lower = empirical_lower_bound(&net, &region, 100, seed.wrapping_add(1));
        let upper = net.lipschitz_constant();
        prop_assert!(lower <= upper * (1.0 + 1e-9) + 1e-12, "{lower} > {upper}");
    }

    #[test]
    fn all_norm_bounds_dominate_empirical_2norm_slope(seed in 0u64..200) {
        // spectral pairs with the 2-norm; Frobenius dominates spectral.
        let net = random_net(seed, 6, 0);
        let region = BoxRegion::cube(2, -1.0, 1.0);
        let emp = empirical_lower_bound(&net, &region, 50, seed);
        prop_assert!(emp <= upper_bound(&net, NormKind::Spectral) + 1e-9);
        prop_assert!(emp <= upper_bound(&net, NormKind::Frobenius) + 1e-9);
    }

    #[test]
    fn ibp_bounds_contain_sampled_outputs(seed in 0u64..500, half_width in 0.01..2.0f64) {
        let net = random_net(seed, 8, (seed % 3) as u8);
        let region = BoxRegion::cube(2, -half_width, half_width);
        let bounds = net.bounds(&region);
        let mut r = rng::seeded(seed.wrapping_mul(31).wrapping_add(7));
        for _ in 0..50 {
            let x = rng::uniform_in_box(&mut r, &region);
            let y = net.forward(&x);
            for (yi, bi) in y.iter().zip(&bounds) {
                prop_assert!(bi.inflate(1e-9).contains(*yi), "{yi} escapes {bi}");
            }
        }
    }

    #[test]
    fn input_gradient_is_directional_derivative(seed in 0u64..200, x0 in -1.0..1.0f64, x1 in -1.0..1.0f64) {
        let net = random_net(seed, 6, 0);
        let x = [x0, x1];
        let grad_out = vec![1.0];
        let g = net.input_gradient(&x, &grad_out);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * h);
            prop_assert!((fd - g[i]).abs() < 1e-4, "dim {i}: fd {fd} vs {}", g[i]);
        }
    }

    #[test]
    fn json_roundtrip_forward_identical(seed in 0u64..200, x0 in -2.0..2.0f64, x1 in -2.0..2.0f64) {
        let net = random_net(seed, 5, (seed % 3) as u8);
        let back = Mlp::from_json(&net.to_json().unwrap()).unwrap();
        let a = net.forward(&[x0, x1]);
        let b = back.forward(&[x0, x1]);
        prop_assert!(vector::norm_inf(&vector::sub(&a, &b)) < 1e-12);
    }

    #[test]
    fn tanh_output_net_is_bounded(seed in 0u64..200, x0 in -100.0..100.0f64, x1 in -100.0..100.0f64) {
        let net = MlpBuilder::new(2)
            .hidden(6, Activation::Relu)
            .output(2, Activation::Tanh)
            .seed(seed)
            .build();
        let y = net.forward(&[x0, x1]);
        prop_assert!(y.iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
