//! Structured telemetry for the Cocktail pipeline.
//!
//! The pipeline stages (PPO mixing, robust distillation, evaluation,
//! quarantine) report what they do through a single narrow interface: a
//! [`Telemetry`] sink receiving typed [`Event`]s. Three sinks ship with the
//! crate:
//!
//! - [`NullSink`] — the zero-cost default. `enabled()` is `false`, so hot
//!   paths skip event construction entirely.
//! - [`JsonlSink`] — an append-only event log (one JSON object per line,
//!   written and flushed atomically per event, so a crash never leaves a
//!   torn line in the middle of the file).
//! - [`InMemorySink`] — records events in memory for tests.
//!
//! # Determinism contract
//!
//! Event **payloads** (`kind`, `name`, `fields`) must be a pure function of
//! the run's seed and configuration — never of wall-clock time, worker
//! scheduling, or iteration order of a parallel loop. Wall-clock durations
//! live exclusively in the separate [`Event::duration_us`] field, which
//! deterministic comparisons strip with [`Event::without_duration`].
//! Instrumented code must therefore never record events from inside a
//! parallel worker closure: collect per-task data, then merge and emit in
//! index order after the join (see `cocktail_core::metrics`).

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What an [`Event`] is: a span boundary, a monotonic counter increment,
/// a histogram observation, or a point-in-run structured fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A timed region opens. The matching [`EventKind::SpanEnd`] carries the
    /// wall-clock duration.
    SpanStart,
    /// A timed region closes.
    SpanEnd,
    /// A monotonic counter increment; the delta rides in the `delta` field.
    Counter,
    /// A single numeric observation in a named distribution.
    Histogram,
    /// A structured fact that is neither timing nor aggregation.
    Point,
}

/// One typed field in an event payload.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (indices, counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point observation. Non-finite values serialize as `null`
    /// so the JSONL output stays strict-JSON parseable.
    F64(f64),
    /// Free-form label (stage names, reasons).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

// Hand-written (rather than derived) so the `F64` payload degrades to
// `null` instead of a bare `NaN` literal, which strict JSON parsers
// reject. `null` deserializes back to `F64(NaN)`.
impl Serialize for FieldValue {
    fn to_value(&self) -> serde::Value {
        let (tag, payload) = match self {
            FieldValue::U64(n) => ("U64", n.to_value()),
            FieldValue::I64(n) => ("I64", n.to_value()),
            FieldValue::F64(x) if !x.is_finite() => ("F64", serde::Value::Null),
            FieldValue::F64(x) => ("F64", x.to_value()),
            FieldValue::Str(s) => ("Str", s.to_value()),
            FieldValue::Bool(b) => ("Bool", b.to_value()),
        };
        serde::Value::Map(vec![(tag.to_string(), payload)])
    }
}

impl Deserialize for FieldValue {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let fields = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("expected externally-tagged FieldValue"))?;
        let [(tag, payload)] = fields else {
            return Err(serde::DeError::custom("expected a single-variant map"));
        };
        match (tag.as_str(), payload) {
            ("U64", p) => Ok(FieldValue::U64(u64::from_value(p)?)),
            ("I64", p) => Ok(FieldValue::I64(i64::from_value(p)?)),
            ("F64", serde::Value::Null) => Ok(FieldValue::F64(f64::NAN)),
            ("F64", p) => Ok(FieldValue::F64(f64::from_value(p)?)),
            ("Str", p) => Ok(FieldValue::Str(String::from_value(p)?)),
            ("Bool", p) => Ok(FieldValue::Bool(bool::from_value(p)?)),
            (other, _) => Err(serde::DeError::custom(format!(
                "unknown FieldValue variant `{other}`"
            ))),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(n: u64) -> Self {
        FieldValue::U64(n)
    }
}

impl From<usize> for FieldValue {
    fn from(n: usize) -> Self {
        FieldValue::U64(n as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(n: i64) -> Self {
        FieldValue::I64(n)
    }
}

impl From<f64> for FieldValue {
    fn from(x: f64) -> Self {
        FieldValue::F64(x)
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}

impl From<bool> for FieldValue {
    fn from(b: bool) -> Self {
        FieldValue::Bool(b)
    }
}

/// One telemetry record.
///
/// Everything except [`Event::duration_us`] is deterministic for a fixed
/// seed and configuration (see the crate-level determinism contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// What kind of record this is.
    pub kind: EventKind,
    /// Hierarchical name, slash-separated: `pipeline/ppo-mixing`.
    pub name: String,
    /// Counter increment; `Some` only for [`EventKind::Counter`].
    pub delta: Option<u64>,
    /// Structured payload, in emission order.
    pub fields: Vec<(String, FieldValue)>,
    /// Wall-clock duration in microseconds (`SpanEnd` only). Excluded from
    /// deterministic comparisons — strip with [`Event::without_duration`].
    pub duration_us: Option<u64>,
}

impl Event {
    /// A bare event of the given kind and name.
    #[must_use]
    pub fn new(kind: EventKind, name: &str) -> Self {
        Self {
            kind,
            name: name.to_string(),
            delta: None,
            fields: Vec::new(),
            duration_us: None,
        }
    }

    /// A counter increment.
    #[must_use]
    pub fn counter(name: &str, delta: u64) -> Self {
        let mut e = Self::new(EventKind::Counter, name);
        e.delta = Some(delta);
        e
    }

    /// A histogram observation.
    #[must_use]
    pub fn histogram(name: &str, value: f64) -> Self {
        Self::new(EventKind::Histogram, name).with("value", value)
    }

    /// A point event.
    #[must_use]
    pub fn point(name: &str) -> Self {
        Self::new(EventKind::Point, name)
    }

    /// Appends a payload field (builder-style).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The event with its wall-clock duration stripped, for deterministic
    /// stream comparisons.
    #[must_use]
    pub fn without_duration(mut self) -> Self {
        self.duration_us = None;
        self
    }

    /// The payload field with the given key, if present.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A telemetry sink.
///
/// Implementations must be cheap to call and must not panic: telemetry is
/// advisory, a sink failure must never take the pipeline down. The provided
/// counter/point helpers check [`Telemetry::enabled`] first, so a disabled
/// sink pays nothing beyond one virtual call.
pub trait Telemetry: Send + Sync {
    /// Whether events are worth constructing at all. The [`NullSink`]
    /// returns `false`; instrumented hot paths gate on this to skip
    /// payload-building entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: Event);

    /// Increments the named monotonic counter.
    fn counter(&self, name: &str, delta: u64) {
        if self.enabled() && delta > 0 {
            self.record(Event::counter(name, delta));
        }
    }

    /// Records one histogram observation.
    fn observe(&self, name: &str, value: f64) {
        if self.enabled() {
            self.record(Event::histogram(name, value));
        }
    }
}

/// An RAII timing guard for a named region.
///
/// Emits [`EventKind::SpanStart`] on construction and [`EventKind::SpanEnd`]
/// (carrying the identifying fields plus the wall-clock duration) on drop.
/// When the sink is disabled the guard is inert and allocation-free.
#[must_use = "a span measures the region it is alive for"]
pub struct Span<'a> {
    tel: Option<&'a dyn Telemetry>,
    name: String,
    fields: Vec<(String, FieldValue)>,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Opens a span on `tel`.
    pub fn enter(tel: &'a dyn Telemetry, name: &str) -> Self {
        Self::enter_with(tel, name, Vec::new())
    }

    /// Opens a span carrying identifying fields (e.g. an epoch index),
    /// repeated on both the start and end events.
    pub fn enter_with(
        tel: &'a dyn Telemetry,
        name: &str,
        fields: Vec<(String, FieldValue)>,
    ) -> Self {
        if !tel.enabled() {
            return Self {
                tel: None,
                name: String::new(),
                fields: Vec::new(),
                start: Instant::now(),
            };
        }
        let mut start_event = Event::new(EventKind::SpanStart, name);
        start_event.fields.clone_from(&fields);
        tel.record(start_event);
        Self {
            tel: Some(tel),
            name: name.to_string(),
            fields,
            start: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(tel) = self.tel {
            let mut end = Event::new(EventKind::SpanEnd, &self.name);
            end.fields = std::mem::take(&mut self.fields);
            end.duration_us =
                Some(u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX));
            tel.record(end);
        }
    }
}

/// The zero-cost default sink: reports `enabled() == false` and drops
/// everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Telemetry for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// An in-memory sink for tests.
#[derive(Debug, Default)]
pub struct InMemorySink {
    events: Mutex<Vec<Event>>,
}

impl InMemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the recorded events.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Drains and returns the recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        self.events
            .lock()
            .map(|mut e| std::mem::take(&mut *e))
            .unwrap_or_default()
    }

    /// The recorded events with the given name, in order.
    #[must_use]
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .map(|e| e.iter().filter(|ev| ev.name == name).cloned().collect())
            .unwrap_or_default()
    }

    /// The sum of all increments of the named counter.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .filter(|e| e.kind == EventKind::Counter && e.name == name)
            .map(|e| e.delta.unwrap_or(0))
            .sum()
    }
}

impl Telemetry for InMemorySink {
    fn record(&self, event: Event) {
        if let Ok(mut events) = self.events.lock() {
            events.push(event);
        }
    }
}

/// An append-only JSONL sink: one JSON object per line, written and
/// flushed per event so a crash can at worst truncate the final line.
///
/// Write or serialization failures flip the sink into a disabled state
/// instead of panicking — telemetry must never take the pipeline down.
#[derive(Debug)]
pub struct JsonlSink {
    file: Mutex<std::fs::File>,
    failed: AtomicBool,
}

impl JsonlSink {
    /// Creates (truncating) the log at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            file: Mutex::new(std::fs::File::create(path)?),
            failed: AtomicBool::new(false),
        })
    }

    /// Opens the log at `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be opened.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            file: Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            failed: AtomicBool::new(false),
        })
    }
}

impl Telemetry for JsonlSink {
    fn enabled(&self) -> bool {
        !self.failed.load(Ordering::Relaxed)
    }

    fn record(&self, event: Event) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut line) = serde_json::to_string(&event) else {
            self.failed.store(true, Ordering::Relaxed);
            return;
        };
        line.push('\n');
        let ok = self
            .file
            .lock()
            .map(|mut f| {
                f.write_all(line.as_bytes())
                    .and_then(|()| f.flush())
                    .is_ok()
            })
            .unwrap_or(false);
        if !ok {
            self.failed.store(true, Ordering::Relaxed);
        }
    }
}

/// Reads every event back from a JSONL log written by [`JsonlSink`].
///
/// # Errors
///
/// Returns a message naming the first unparseable line.
pub fn read_jsonl(path: &Path) -> Result<Vec<Event>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            serde_json::from_str::<Event>(line).map_err(|e| format!("line {}: {e:?}", i + 1))
        })
        .collect()
}

/// Aggregate view of an event stream, for summary rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// `(span name, completions, total wall-clock µs)` sorted by name.
    pub spans: Vec<(String, u64, u64)>,
    /// `(counter name, total)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(histogram name, observations, min, max)` sorted by name.
    pub histograms: Vec<(String, u64, f64, f64)>,
    /// Point events, in order.
    pub points: u64,
}

/// Aggregates an event stream into per-name totals.
#[must_use]
pub fn summarize(events: &[Event]) -> StreamSummary {
    let mut spans: Vec<(String, u64, u64)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut histograms: Vec<(String, u64, f64, f64)> = Vec::new();
    let mut points = 0u64;
    for e in events {
        match e.kind {
            EventKind::SpanEnd => {
                let us = e.duration_us.unwrap_or(0);
                match spans.iter_mut().find(|(n, _, _)| *n == e.name) {
                    Some((_, count, total)) => {
                        *count += 1;
                        *total += us;
                    }
                    None => spans.push((e.name.clone(), 1, us)),
                }
            }
            EventKind::Counter => {
                let delta = e.delta.unwrap_or(0);
                match counters.iter_mut().find(|(n, _)| *n == e.name) {
                    Some((_, total)) => *total += delta,
                    None => counters.push((e.name.clone(), delta)),
                }
            }
            EventKind::Histogram => {
                let v = match e.field("value") {
                    Some(&FieldValue::F64(x)) => x,
                    _ => f64::NAN,
                };
                match histograms.iter_mut().find(|(n, _, _, _)| *n == e.name) {
                    Some((_, count, lo, hi)) => {
                        *count += 1;
                        *lo = lo.min(v);
                        *hi = hi.max(v);
                    }
                    None => histograms.push((e.name.clone(), 1, v, v)),
                }
            }
            EventKind::Point => points += 1,
            EventKind::SpanStart => {}
        }
    }
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    StreamSummary {
        spans,
        counters,
        histograms,
        points,
    }
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        reason = "tests panic freely by design"
    )]

    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.counter("x", 3);
        sink.record(Event::point("y"));
        // spans on a disabled sink are inert
        drop(Span::enter(&sink, "z"));
    }

    #[test]
    fn in_memory_sink_records_counters_and_spans() {
        let sink = InMemorySink::new();
        sink.counter("eval.samples", 5);
        sink.counter("eval.samples", 7);
        {
            let _span = Span::enter_with(&sink, "stage", vec![("epoch".into(), 3u64.into())]);
        }
        assert_eq!(sink.counter_total("eval.samples"), 12);
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2].kind, EventKind::SpanStart);
        assert_eq!(events[3].kind, EventKind::SpanEnd);
        assert_eq!(events[3].field("epoch"), Some(&FieldValue::U64(3)));
        assert!(events[3].duration_us.is_some(), "spans carry wall-clock");
        assert!(
            events[3].clone().without_duration().duration_us.is_none(),
            "deterministic comparisons strip the duration"
        );
    }

    #[test]
    fn jsonl_sink_round_trips_and_stays_strict_json() {
        let path = std::env::temp_dir().join(format!("cocktail-obs-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create");
        sink.counter("quarantine.events", 1);
        sink.record(
            Event::point("eval")
                .with("mean_energy", f64::NAN)
                .with("safe", true),
        );
        {
            let _span = Span::enter(&sink, "pipeline");
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(
            !text.contains("NaN") && !text.contains("Infinity"),
            "non-finite payloads must degrade to null, got: {text}"
        );
        let events = read_jsonl(&path).expect("every line parses");
        assert_eq!(events.len(), 4);
        match events[1].field("mean_energy") {
            Some(FieldValue::F64(x)) => assert!(x.is_nan()),
            other => panic!("expected F64(NaN), got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summarize_aggregates_by_name() {
        let sink = InMemorySink::new();
        sink.counter("a", 2);
        sink.counter("a", 3);
        sink.observe("h", 1.0);
        sink.observe("h", -4.0);
        {
            let _s = Span::enter(&sink, "s");
        }
        {
            let _s = Span::enter(&sink, "s");
        }
        let summary = summarize(&sink.events());
        assert_eq!(summary.counters, vec![("a".to_string(), 5)]);
        assert_eq!(summary.spans.len(), 1);
        assert_eq!(summary.spans[0].1, 2);
        assert_eq!(summary.histograms[0].1, 2);
        assert_eq!(summary.histograms[0].2, -4.0);
        assert_eq!(summary.histograms[0].3, 1.0);
    }
}
