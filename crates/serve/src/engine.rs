//! The sharded micro-batching inference engine.
//!
//! Concurrent control requests are spread across N **shards** — each shard
//! owns its own bounded queue, its own worker thread, and its own reusable
//! batch scratch — and coalesced into [`Mlp::forward_batch_cached`] calls.
//! Shard assignment is a deterministic hash of the submitting connection
//! id ([`EngineHandle::pinned`]), so a given client always lands on the
//! same queue and a drill is replayable. Each row of a batched forward is
//! bit-identical to a per-sample [`Mlp::forward`], and scaling/clipping
//! are applied per request exactly as `NnController::control` +
//! `Dynamics::clip_control` would — so the served output is invariant
//! under both the batch schedule *and* the shard count.
//!
//! The worker's steady-state loop performs **zero heap allocations per
//! request** on the outbox (binary-wire) reply path: request state buffers
//! are pooled per shard, batch scratch (input matrix + [`BatchCache`]) is
//! kept per batch-size class, and responses are fixed-size
//! [`ResponseRec`]s pushed into a capacity-reusing ring. CI asserts this
//! with a counting allocator.
//!
//! Batching policy: by default the worker serves *whatever is queued* the
//! moment it is free (`batch_deadline` zero). Under concurrent load,
//! batches form naturally while the previous batch is being computed —
//! deadline-waiting for a fuller batch only ever adds latency when the
//! submitters are blocking on their replies (this inversion is exactly
//! what the PR-5 baseline measured). A nonzero deadline remains available
//! for sparse open-loop traffic.
//!
//! Two runtime guardrails, unchanged from the single-queue engine:
//!
//! * **Backpressure**: every shard queue is bounded; a submit against a
//!   full queue fails *immediately* with [`ServeError::Backpressure`]. A
//!   control loop must never block on its controller.
//! * **Non-finite guard**: if a (scaled) output row is non-finite — or
//!   the network's own internal finiteness assertion panics mid-batch —
//!   the request is answered by the configured fallback expert and
//!   `serve.fallbacks` is incremented; with no fallback the request fails
//!   with [`ServeError::NonFiniteOutput`].

use crate::admission::Admitted;
use crate::bundle::fnv1a_64;
use crate::wire::{self, ResponseRec, MAX_WIRE_CONTROL_DIM};
use cocktail_control::Controller;
use cocktail_math::Matrix;
use cocktail_nn::{BatchCache, Mlp};
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Largest number of requests folded into one batched forward.
    pub max_batch: usize,
    /// How long a shard worker holds an open batch for more requests.
    /// Zero (the default) means "serve whatever is queued immediately";
    /// under load batches still form naturally while the previous batch
    /// computes.
    pub batch_deadline: Duration,
    /// Bounded queue capacity **per shard**; submits beyond it are
    /// rejected.
    pub queue_capacity: usize,
    /// Start with the scheduler paused (deterministic batch composition
    /// for tests: queue requests, then [`Engine::resume`]).
    pub start_paused: bool,
    /// Engine shards: independent queue + worker + scratch, ideally one
    /// per core. Connection ids hash onto shards deterministically.
    pub shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            batch_deadline: Duration::ZERO,
            queue_capacity: 256,
            start_paused: false,
            shards: 1,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The shard's bounded queue is full; the request was rejected
    /// without blocking. `depth` is the queue depth observed at rejection.
    Backpressure {
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// The request itself is malformed (wrong dimension, non-finite
    /// state).
    BadRequest(String),
    /// The network produced a non-finite output and no fallback expert is
    /// configured.
    NonFiniteOutput,
    /// The engine shut down before answering.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure { depth } => {
                write!(f, "queue full ({depth} requests pending); request rejected")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NonFiniteOutput => {
                write!(f, "non-finite controller output and no fallback expert")
            }
            ServeError::Shutdown => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered control request.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlResponse {
    /// The clipped control vector.
    pub control: Vec<f64>,
    /// Whether the fallback expert answered (non-finite primary output).
    pub served_by_fallback: bool,
}

/// The allocation-free reply ring the reactor transport drains.
///
/// Shard workers push fixed-size [`ResponseRec`]s; the consumer drains
/// them into its own reused buffer. An optional waker runs after every
/// push so an event loop blocked in `epoll_wait` can be poked (the waker
/// must be cheap and must not panic). Blocking consumers (tests, the
/// threaded transport) can instead [`Outbox::wait_nonempty`].
pub struct Outbox {
    queue: Mutex<VecDeque<ResponseRec>>,
    ready: Condvar,
    waker: Option<Box<dyn Fn() + Send + Sync>>,
}

impl Outbox {
    /// An outbox with no waker (consumers poll or block on
    /// [`Outbox::wait_nonempty`]).
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::with_capacity(64)),
            ready: Condvar::new(),
            waker: None,
        }
    }

    /// An outbox that runs `waker` after each push (e.g. write one byte
    /// to a reactor's wake pipe).
    #[must_use]
    pub fn with_waker(waker: impl Fn() + Send + Sync + 'static) -> Self {
        Self {
            queue: Mutex::new(VecDeque::with_capacity(64)),
            ready: Condvar::new(),
            waker: Some(Box::new(waker)),
        }
    }

    /// Enqueues a record and runs the waker. Shard workers use this for
    /// answers; transports may also push synchronous-rejection records so
    /// one connection's replies stay in submission order.
    pub fn push(&self, rec: ResponseRec) {
        if let Ok(mut q) = self.queue.lock() {
            q.push_back(rec);
        }
        self.ready.notify_all();
        if let Some(waker) = &self.waker {
            waker();
        }
    }

    /// Moves every queued record into `out` (appending; capacity of both
    /// buffers is reused). Returns how many were drained.
    pub fn drain_into(&self, out: &mut Vec<ResponseRec>) -> usize {
        let Ok(mut q) = self.queue.lock() else {
            return 0;
        };
        let n = q.len();
        out.extend(q.drain(..));
        n
    }

    /// Blocks until the outbox is non-empty or `timeout` passes; returns
    /// whether records are available.
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let Ok(mut q) = self.queue.lock() else {
            return false;
        };
        let deadline = Instant::now() + timeout;
        while q.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            match self.ready.wait_timeout(q, deadline - now) {
                Ok((guard, _)) => q = guard,
                Err(_) => return false,
            }
        }
        true
    }
}

impl Default for Outbox {
    fn default() -> Self {
        Self::new()
    }
}

enum Reply {
    /// One-shot channel feeding a [`Ticket`] (in-process and threaded
    /// transport clients).
    Channel(mpsc::SyncSender<Result<ControlResponse, ServeError>>),
    /// Fixed-size record pushed onto a shared reply ring (reactor /
    /// binary-wire clients). Allocation-free on the worker side.
    Outbox { outbox: Arc<Outbox>, id: u64 },
}

struct Request {
    state: Vec<f64>,
    reply: Reply,
}

struct ShardState {
    queue: VecDeque<Request>,
    /// Pooled state buffers: submits pop one instead of allocating, the
    /// worker returns them after each batch.
    free: Vec<Vec<f64>>,
    paused: bool,
    shutdown: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    wake: Condvar,
}

struct Shared {
    shards: Vec<Shard>,
    rr: AtomicUsize,
    state_dim: usize,
    control_dim: usize,
    queue_capacity: usize,
    tel: Arc<dyn Telemetry>,
}

impl Shared {
    fn shard_for(&self, conn_id: u64) -> usize {
        #[allow(
            clippy::cast_possible_truncation,
            reason = "modulo shard count, far below 2^32"
        )]
        {
            (fnv1a_64(&conn_id.to_le_bytes()) % self.shards.len() as u64) as usize
        }
    }

    fn submit(&self, shard_idx: usize, state: &[f64], reply: Reply) -> Result<(), ServeError> {
        if state.len() != self.state_dim {
            return Err(ServeError::BadRequest(format!(
                "state dimension {} != expected {}",
                state.len(),
                self.state_dim
            )));
        }
        if !state.iter().all(|v| v.is_finite()) {
            return Err(ServeError::BadRequest("non-finite state component".into()));
        }
        let shard = &self.shards[shard_idx];
        #[allow(
            clippy::expect_used,
            reason = "a poisoned engine mutex means a worker panic; propagating is correct"
        )]
        let mut guard = shard.state.lock().expect("engine mutex poisoned");
        if guard.shutdown {
            return Err(ServeError::Shutdown);
        }
        if guard.queue.len() >= self.queue_capacity {
            let depth = guard.queue.len();
            drop(guard);
            self.tel.counter("serve.rejections", 1);
            return Err(ServeError::Backpressure { depth });
        }
        let mut buf = guard
            .free
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.state_dim));
        buf.clear();
        buf.extend_from_slice(state);
        guard.queue.push_back(Request { state: buf, reply });
        drop(guard);
        shard.wake.notify_all();
        Ok(())
    }
}

/// A cloneable submission handle; this is what transports and in-process
/// clients hold. Unpinned submits round-robin across shards; transports
/// should [`EngineHandle::pinned`] each connection instead.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

/// A handle pinned to the shard a connection id hashes to. All requests
/// from one connection share a queue, which keeps rejection patterns and
/// batch composition replayable.
#[derive(Clone)]
pub struct PinnedHandle {
    shared: Arc<Shared>,
    shard: usize,
}

/// An in-flight request; [`Ticket::wait`] blocks until a shard worker
/// answers.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ControlResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the per-request [`ServeError`], or [`ServeError::Shutdown`]
    /// when the engine died first.
    pub fn wait(self) -> Result<ControlResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

impl EngineHandle {
    /// State (input) dimension served by this engine.
    pub fn state_dim(&self) -> usize {
        self.shared.state_dim
    }

    /// Control (output) dimension served by this engine.
    pub fn control_dim(&self) -> usize {
        self.shared.control_dim
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The handle pinned to the shard `conn_id` hashes to
    /// (FNV-1a(conn_id) mod shards — deterministic, evenly spread for
    /// sequential ids).
    #[must_use]
    pub fn pinned(&self, conn_id: u64) -> PinnedHandle {
        PinnedHandle {
            shard: self.shared.shard_for(conn_id),
            shared: self.shared.clone(),
        }
    }

    /// Enqueues a request without blocking, on a round-robin shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] on a full shard queue,
    /// [`ServeError::BadRequest`] on a malformed state,
    /// [`ServeError::Shutdown`] after shutdown.
    pub fn try_submit(&self, state: &[f64]) -> Result<Ticket, ServeError> {
        let shard = self.shared.rr.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        submit_ticket(&self.shared, shard, state)
    }

    /// Submits and waits for the answer — the in-process client call.
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`] and [`Ticket::wait`].
    pub fn submit(&self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.try_submit(state)?.wait()
    }
}

impl PinnedHandle {
    /// State (input) dimension served by this engine.
    pub fn state_dim(&self) -> usize {
        self.shared.state_dim
    }

    /// Control (output) dimension served by this engine.
    pub fn control_dim(&self) -> usize {
        self.shared.control_dim
    }

    /// The shard index this handle is pinned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Enqueues a request on the pinned shard without blocking.
    ///
    /// # Errors
    ///
    /// See [`EngineHandle::try_submit`].
    pub fn try_submit(&self, state: &[f64]) -> Result<Ticket, ServeError> {
        submit_ticket(&self.shared, self.shard, state)
    }

    /// Submits and waits for the answer.
    ///
    /// # Errors
    ///
    /// See [`EngineHandle::submit`].
    pub fn submit(&self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.try_submit(state)?.wait()
    }

    /// Enqueues a request whose answer is pushed onto `outbox` as a
    /// fixed-size [`ResponseRec`] carrying `id` — the allocation-free
    /// reply path the reactor transport uses.
    ///
    /// # Errors
    ///
    /// As [`Self::try_submit`], plus [`ServeError::BadRequest`] when the
    /// engine's control dimension exceeds the wire limit
    /// ([`MAX_WIRE_CONTROL_DIM`]).
    pub fn try_submit_outbox(
        &self,
        id: u64,
        state: &[f64],
        outbox: &Arc<Outbox>,
    ) -> Result<(), ServeError> {
        if self.shared.control_dim > MAX_WIRE_CONTROL_DIM {
            return Err(ServeError::BadRequest(format!(
                "control dimension {} exceeds the binary-wire limit {MAX_WIRE_CONTROL_DIM}",
                self.shared.control_dim
            )));
        }
        self.shared.submit(
            self.shard,
            state,
            Reply::Outbox {
                outbox: outbox.clone(),
                id,
            },
        )
    }
}

fn submit_ticket(shared: &Arc<Shared>, shard: usize, state: &[f64]) -> Result<Ticket, ServeError> {
    let (tx, rx) = mpsc::sync_channel(1);
    shared.submit(shard, state, Reply::Channel(tx))?;
    Ok(Ticket { rx })
}

/// The engine: owns the shard worker threads. Dropping it shuts the
/// workers down after draining every queue.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine serving an admitted bundle, with no fallback and
    /// no telemetry.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::bundle::BundleError`] message when the
    /// admitted spec is not servable (cannot happen for bundles that went
    /// through [`crate::admission::admit`]).
    pub fn start(admitted: &Admitted, config: EngineConfig) -> Result<Self, ServeError> {
        Self::start_with(admitted, config, None, Arc::new(NullSink))
    }

    /// Starts an engine with an optional fallback expert and telemetry.
    ///
    /// The fallback must match the bundle's dimensions; it answers any
    /// request whose primary output is non-finite.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the spec is not the `Mlp` family or
    /// the fallback dimensions disagree with the bundle.
    pub fn start_with(
        admitted: &Admitted,
        config: EngineConfig,
        fallback: Option<Arc<dyn Controller>>,
        tel: Arc<dyn Telemetry>,
    ) -> Result<Self, ServeError> {
        let (net, scale) = admitted
            .bundle
            .network()
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        Self::from_parts(
            net.clone(),
            scale.to_vec(),
            admitted.bundle.u_inf.clone(),
            admitted.bundle.u_sup.clone(),
            config,
            fallback,
            tel,
        )
    }

    /// Starts an engine from raw parts, bypassing admission. Exists for
    /// the fault drills (serving a deliberately overflowing network to
    /// exercise the fallback path) and the perf harness; production
    /// callers go through [`crate::admission::admit`] + [`Self::start`].
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on any dimension inconsistency.
    #[allow(
        clippy::needless_pass_by_value,
        reason = "callers hand over ownership; every shard worker clones its own copy, so nothing is left to give back"
    )]
    pub fn from_parts(
        net: Mlp,
        scale: Vec<f64>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
        config: EngineConfig,
        fallback: Option<Arc<dyn Controller>>,
        tel: Arc<dyn Telemetry>,
    ) -> Result<Self, ServeError> {
        let control_dim = net.output_dim();
        if scale.len() != control_dim || u_inf.len() != control_dim || u_sup.len() != control_dim {
            return Err(ServeError::BadRequest(format!(
                "scale/clip arity ({}, {}, {}) != control dimension {control_dim}",
                scale.len(),
                u_inf.len(),
                u_sup.len()
            )));
        }
        if let Some(fb) = &fallback {
            if fb.state_dim() != net.input_dim() || fb.control_dim() != control_dim {
                return Err(ServeError::BadRequest(format!(
                    "fallback expert `{}` dimensions ({}, {}) != bundle dimensions ({}, {})",
                    fb.name(),
                    fb.state_dim(),
                    fb.control_dim(),
                    net.input_dim(),
                    control_dim
                )));
            }
        }
        let n_shards = config.shards.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let shards = (0..n_shards)
            .map(|_| Shard {
                state: Mutex::new(ShardState {
                    queue: VecDeque::with_capacity(queue_capacity),
                    free: Vec::with_capacity(queue_capacity),
                    paused: config.start_paused,
                    shutdown: false,
                }),
                wake: Condvar::new(),
            })
            .collect();
        let shared = Arc::new(Shared {
            shards,
            rr: AtomicUsize::new(0),
            state_dim: net.input_dim(),
            control_dim,
            queue_capacity,
            tel,
        });
        let max_batch = config.max_batch.max(1);
        let deadline = config.batch_deadline;
        let mut workers = Vec::with_capacity(n_shards);
        for shard_idx in 0..n_shards {
            let worker_shared = shared.clone();
            let net = net.clone();
            let scale = scale.clone();
            let u_inf = u_inf.clone();
            let u_sup = u_sup.clone();
            let fallback = fallback.clone();
            let worker = std::thread::Builder::new()
                .name(format!("cocktail-serve-shard-{shard_idx}"))
                .spawn(move || {
                    shard_worker(
                        &worker_shared,
                        shard_idx,
                        &ShardParams {
                            net,
                            scale,
                            u_inf,
                            u_sup,
                            max_batch,
                            deadline,
                            fallback,
                        },
                    );
                })
                .map_err(|e| ServeError::BadRequest(format!("spawn worker: {e}")))?;
            workers.push(worker);
        }
        Ok(Self { shared, workers })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: self.shared.clone(),
        }
    }

    /// Pauses every shard scheduler: requests keep queueing (and keep
    /// being rejected once a queue is full) but no batch runs.
    pub fn pause(&self) {
        self.set_paused(true);
    }

    /// Resumes a paused scheduler.
    pub fn resume(&self) {
        self.set_paused(false);
    }

    fn set_paused(&self, paused: bool) {
        for shard in &self.shared.shards {
            #[allow(
                clippy::expect_used,
                reason = "a poisoned engine mutex means a worker panic; propagating is correct"
            )]
            let mut guard = shard.state.lock().expect("engine mutex poisoned");
            guard.paused = paused;
            drop(guard);
            shard.wake.notify_all();
        }
    }

    /// Shuts every shard worker down after draining its queue.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for shard in &self.shared.shards {
            #[allow(
                clippy::expect_used,
                reason = "a poisoned engine mutex means a worker panic; propagating is correct"
            )]
            let mut guard = shard.state.lock().expect("engine mutex poisoned");
            guard.shutdown = true;
            // a paused engine must still drain on shutdown
            guard.paused = false;
            drop(guard);
            shard.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Immutable per-shard worker parameters (one clone per shard).
struct ShardParams {
    net: Mlp,
    scale: Vec<f64>,
    u_inf: Vec<f64>,
    u_sup: Vec<f64>,
    max_batch: usize,
    deadline: Duration,
    fallback: Option<Arc<dyn Controller>>,
}

/// Per-shard reusable scratch. `inputs[k]`/`caches[k]` are the staging
/// matrix and forward cache for batch-size class `k`; each class is
/// allocated on first use and reused forever after, so a steady-state
/// batch touches no allocator no matter how batch sizes fluctuate.
struct ShardScratch {
    batch: Vec<Request>,
    spent: Vec<Vec<f64>>,
    inputs: Vec<Option<Matrix>>,
    caches: Vec<Option<BatchCache>>,
    scaled: Vec<f64>,
}

impl ShardScratch {
    fn new(max_batch: usize, control_dim: usize, capacity: usize) -> Self {
        Self {
            batch: Vec::with_capacity(max_batch),
            spent: Vec::with_capacity(capacity + max_batch),
            inputs: (0..=max_batch).map(|_| None).collect(),
            caches: (0..=max_batch).map(|_| None).collect(),
            scaled: vec![0.0; control_dim],
        }
    }
}

fn shard_worker(shared: &Shared, shard_idx: usize, params: &ShardParams) {
    let tel = shared.tel.as_ref();
    let shard = &shared.shards[shard_idx];
    let mut scratch =
        ShardScratch::new(params.max_batch, shared.control_dim, shared.queue_capacity);
    loop {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned engine mutex means a submitter panicked mid-push; nothing to salvage"
        )]
        let mut guard = shard.state.lock().expect("engine mutex poisoned");
        // return the previous batch's state buffers to the submit pool
        while let Some(mut buf) = scratch.spent.pop() {
            if guard.free.len() < shared.queue_capacity + params.max_batch {
                buf.clear();
                guard.free.push(buf);
            }
        }
        // wait for work (or shutdown with an empty queue)
        loop {
            if guard.queue.is_empty() || guard.paused {
                if guard.shutdown && guard.queue.is_empty() {
                    return;
                }
                #[allow(
                    clippy::expect_used,
                    reason = "condvar wait fails only on a poisoned mutex"
                )]
                {
                    guard = shard.wake.wait(guard).expect("engine mutex poisoned");
                }
            } else {
                break;
            }
        }
        // optional batch window: hold for up to `deadline` or `max_batch`
        if !params.deadline.is_zero() {
            let window_end = Instant::now() + params.deadline;
            while guard.queue.len() < params.max_batch && !guard.shutdown && !guard.paused {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                #[allow(
                    clippy::expect_used,
                    reason = "condvar wait fails only on a poisoned mutex"
                )]
                let (g, timeout) = shard
                    .wake
                    .wait_timeout(guard, window_end - now)
                    .expect("engine mutex poisoned");
                guard = g;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        if guard.paused && !guard.shutdown {
            continue; // drop the guard, go back to waiting
        }
        let depth = guard.queue.len();
        let take = depth.min(params.max_batch);
        scratch.batch.clear();
        for _ in 0..take {
            #[allow(
                clippy::expect_used,
                reason = "take <= queue length under the lock just taken"
            )]
            scratch
                .batch
                .push(guard.queue.pop_front().expect("take <= len"));
        }
        drop(guard);

        run_batch(tel, shard_idx, &mut scratch, params, depth);
    }
}

fn run_batch(
    tel: &dyn Telemetry,
    shard_idx: usize,
    scratch: &mut ShardScratch,
    params: &ShardParams,
    depth: usize,
) {
    let n = scratch.batch.len();
    let span = if tel.enabled() {
        Some(Span::enter_with(
            tel,
            "serve/batch",
            vec![
                ("batch".to_string(), n.into()),
                ("queue_depth".to_string(), depth.into()),
                ("shard".to_string(), shard_idx.into()),
            ],
        ))
    } else {
        None
    };

    // stage the batch into this size class's input matrix
    let input = scratch.inputs[n].get_or_insert_with(|| Matrix::zeros(n, params.net.input_dim()));
    for (r, req) in scratch.batch.iter().enumerate() {
        input.row_mut(r).copy_from_slice(&req.state);
    }
    let cache = scratch.caches[n].get_or_insert_with(BatchCache::new);
    // the network asserts its own activations are finite and panics
    // otherwise; catch that so one poisoned batch degrades to the
    // fallback expert instead of killing the shard worker
    let forwarded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        params.net.forward_batch_cached(input, cache);
    }))
    .is_ok();

    let mut fallbacks = 0u64;
    for (r, req) in scratch.batch.drain(..).enumerate() {
        // identical arithmetic to NnController::control followed by the
        // plant clip: y[i] * scale[i], then clamp — bit-for-bit what the
        // per-sample path produces
        let mut finite = forwarded;
        if forwarded {
            let row = cache.output().row(r);
            for ((dst, y), sc) in scratch.scaled.iter_mut().zip(row).zip(&params.scale) {
                *dst = y * sc;
                finite &= dst.is_finite();
            }
        }
        let outcome: Result<(&[f64], bool), ServeError> = if finite {
            for ((v, lo), hi) in scratch
                .scaled
                .iter_mut()
                .zip(&params.u_inf)
                .zip(&params.u_sup)
            {
                // same clamp as cocktail_math::vector::clip
                *v = v.clamp(*lo, *hi);
            }
            Ok((scratch.scaled.as_slice(), false))
        } else if let Some(fb) = params.fallback.as_deref() {
            fallbacks += 1;
            let u = fb.control(&req.state);
            if u.iter().all(|v| v.is_finite()) {
                for (((dst, v), lo), hi) in scratch
                    .scaled
                    .iter_mut()
                    .zip(&u)
                    .zip(&params.u_inf)
                    .zip(&params.u_sup)
                {
                    *dst = v.clamp(*lo, *hi);
                }
                Ok((scratch.scaled.as_slice(), true))
            } else {
                Err(ServeError::NonFiniteOutput)
            }
        } else {
            Err(ServeError::NonFiniteOutput)
        };
        match req.reply {
            Reply::Channel(tx) => {
                let response = outcome.map(|(control, served_by_fallback)| ControlResponse {
                    control: control.to_vec(),
                    served_by_fallback,
                });
                // a dropped ticket (client gone) is not an engine error
                let _ = tx.send(response);
            }
            Reply::Outbox { outbox, id } => {
                let rec = match outcome {
                    Ok((control, fallback)) => ResponseRec::ok(id, control, fallback),
                    Err(e) => ResponseRec::err(id, wire::status_of_error(&e)),
                };
                outbox.push(rec);
            }
        }
        scratch.spent.push(req.state);
    }

    tel.observe("serve.batch_size", n as f64);
    tel.observe("serve.queue_depth", depth as f64);
    tel.counter("serve.requests", n as u64);
    tel.counter("serve.fallbacks", fallbacks);
    if tel.enabled() {
        tel.record(Event::histogram("serve.shard.depth", depth as f64).with("shard", shard_idx));
        tel.record(Event::counter("serve.shard.batches", 1).with("shard", shard_idx));
        if fallbacks > 0 {
            tel.record(
                Event::point("serve.degradation")
                    .with("reason", "non-finite-output")
                    .with("shard", shard_idx)
                    .with("requests", fallbacks),
            );
        }
    }
    drop(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::InMemorySink;

    fn small_net() -> Mlp {
        MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(5)
            .build()
    }

    fn engine_with(config: EngineConfig) -> Engine {
        Engine::from_parts(
            small_net(),
            vec![2.0],
            vec![-5.0],
            vec![5.0],
            config,
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts")
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let engine = engine_with(EngineConfig::default());
        let resp = engine.handle().submit(&[0.3, -0.4]).expect("served");
        let expected = cocktail_math::vector::clip(
            &[small_net().forward(&[0.3, -0.4])[0] * 2.0],
            &[-5.0],
            &[5.0],
        );
        assert_eq!(resp.control, expected);
        assert!(!resp.served_by_fallback);
    }

    #[test]
    fn every_shard_serves_the_same_bits() {
        let per_sample = |s: &[f64]| {
            cocktail_math::vector::clip(&[small_net().forward(s)[0] * 2.0], &[-5.0], &[5.0])
        };
        for shards in [1usize, 2, 8] {
            let engine = engine_with(EngineConfig {
                shards,
                ..EngineConfig::default()
            });
            let h = engine.handle();
            assert_eq!(h.shard_count(), shards);
            for conn in 0..16u64 {
                let pinned = h.pinned(conn);
                assert!(pinned.shard() < shards);
                let s = [0.05 * conn as f64 - 0.3, 0.1];
                assert_eq!(
                    pinned.submit(&s).expect("served").control,
                    per_sample(&s),
                    "shard {} of {shards} must match the per-sample path",
                    pinned.shard()
                );
            }
        }
    }

    #[test]
    fn pinning_is_deterministic_and_spread() {
        let engine = engine_with(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let mut counts = [0usize; 4];
        for conn in 0..32u64 {
            let a = h.pinned(conn).shard();
            let b = h.pinned(conn).shard();
            assert_eq!(a, b, "same connection id, same shard");
            counts[a] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "sequential connection ids must touch every shard: {counts:?}"
        );
    }

    #[test]
    fn rejects_malformed_requests_immediately() {
        let engine = engine_with(EngineConfig::default());
        let h = engine.handle();
        assert!(matches!(h.submit(&[1.0]), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            h.submit(&[f64::NAN, 0.0]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn paused_engine_rejects_above_capacity_deterministically() {
        let engine = engine_with(EngineConfig {
            queue_capacity: 3,
            start_paused: true,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| h.try_submit(&[0.1 * f64::from(i), 0.0]).expect("queued"))
            .collect();
        for _ in 0..5 {
            assert_eq!(
                h.try_submit(&[0.9, 0.9]).err(),
                Some(ServeError::Backpressure { depth: 3 })
            );
        }
        engine.resume();
        for t in tickets {
            assert!(t.wait().expect("served after resume").control[0].is_finite());
        }
    }

    #[test]
    fn outbox_replies_carry_the_same_bits_as_tickets() {
        let engine = engine_with(EngineConfig::default());
        let h = engine.handle();
        let pinned = h.pinned(3);
        let outbox = Arc::new(Outbox::new());
        let state = [0.2, -0.6];
        let via_ticket = h.submit(&state).expect("served");
        pinned
            .try_submit_outbox(41, &state, &outbox)
            .expect("queued");
        assert!(outbox.wait_nonempty(Duration::from_secs(5)));
        let mut recs = Vec::new();
        assert_eq!(outbox.drain_into(&mut recs), 1);
        assert_eq!(recs[0].id, 41);
        assert!(recs[0].is_ok());
        assert_eq!(recs[0].control(), via_ticket.control.as_slice());
    }

    #[test]
    fn fallback_answers_non_finite_outputs() {
        // identity-activation net with an overflowing weight: finite
        // parameters, non-finite output at a large input — exactly the
        // case admission cannot rule out and the runtime guard must catch
        let net = MlpBuilder::new(2)
            .hidden(4, Activation::Identity)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        let mut net = net;
        for layer in net.layers_mut() {
            for v in layer.weights_mut().as_mut_slice() {
                *v = 1e300;
            }
        }
        let fallback = Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
            vec![1.0, 1.0],
        ])));
        let tel = Arc::new(InMemorySink::new());
        let engine = Engine::from_parts(
            net,
            vec![1.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig::default(),
            Some(fallback),
            tel.clone(),
        )
        .expect("engine starts");
        let resp = engine
            .handle()
            .submit(&[2.0, 2.0])
            .expect("fallback serves");
        assert!(resp.served_by_fallback);
        assert_eq!(resp.control, vec![-4.0]); // clip(-(2+2)) at [-5, 5]
        drop(engine);
        assert_eq!(tel.counter_total("serve.fallbacks"), 1);
        assert_eq!(tel.counter_total("serve.requests"), 1);
        assert_eq!(tel.counter_total("serve.shard.batches"), 1);
    }

    #[test]
    fn no_fallback_means_an_explicit_error() {
        // tanh layers would keep the output finite; identity ones overflow
        let mut net = MlpBuilder::new(2)
            .hidden(4, Activation::Identity)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        for layer in net.layers_mut() {
            for v in layer.weights_mut().as_mut_slice() {
                *v = 1e300;
            }
        }
        let engine = Engine::from_parts(
            net,
            vec![1.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig::default(),
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        assert_eq!(
            engine.handle().submit(&[2.0, 2.0]).err(),
            Some(ServeError::NonFiniteOutput)
        );
    }

    #[test]
    fn shutdown_drains_queued_requests_on_every_shard() {
        let engine = engine_with(EngineConfig {
            start_paused: true,
            shards: 3,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let tickets: Vec<Ticket> = (0..12u32)
            .map(|i| {
                h.pinned(u64::from(i))
                    .try_submit(&[0.05 * f64::from(i), 0.1])
                    .expect("queued")
            })
            .collect();
        engine.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "queued work drains on shutdown");
        }
        assert_eq!(h.submit(&[0.0, 0.0]).err(), Some(ServeError::Shutdown));
    }
}
