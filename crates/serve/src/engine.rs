//! The micro-batching inference engine.
//!
//! Concurrent control requests are coalesced into one
//! [`Mlp::forward_batch_cached`] call by a single worker thread: the first
//! queued request opens a batch window, the worker then waits up to
//! [`EngineConfig::batch_deadline`] (or until
//! [`EngineConfig::max_batch`] requests are queued) before running the
//! batch. Each row of the batched forward is bit-identical to a per-sample
//! [`Mlp::forward`], and scaling/clipping are applied per request exactly
//! as `NnController::control` + `Dynamics::clip_control` would — so the
//! served output is invariant under the batch schedule.
//!
//! Two runtime guardrails:
//!
//! * **Backpressure**: the queue is bounded; a submit against a full queue
//!   fails *immediately* with [`ServeError::Backpressure`]. A control loop
//!   must never block on its controller — a stale command it can handle, a
//!   stalled plant it cannot.
//! * **Non-finite guard**: if a (scaled) output row is non-finite — or
//!   the network's own internal finiteness assertion panics mid-batch —
//!   the request is answered by the configured fallback expert (the same
//!   degradation idea as `MixedController`'s quarantine, reduced to one
//!   request) and `serve.fallbacks` is incremented; with no fallback the
//!   request fails with [`ServeError::NonFiniteOutput`]. A healthy
//!   admitted bundle never triggers this — CI asserts exactly that.

use crate::admission::Admitted;
use cocktail_control::Controller;
use cocktail_math::{vector, Matrix};
use cocktail_nn::{BatchCache, Mlp};
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Largest number of requests folded into one batched forward.
    pub max_batch: usize,
    /// How long the worker holds an open batch for more requests. Zero
    /// means "serve whatever is queued immediately".
    pub batch_deadline: Duration,
    /// Bounded queue capacity; submits beyond it are rejected.
    pub queue_capacity: usize,
    /// Start with the scheduler paused (deterministic batch composition
    /// for tests: queue requests, then [`Engine::resume`]).
    pub start_paused: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            batch_deadline: Duration::from_micros(200),
            queue_capacity: 256,
            start_paused: false,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is full; the request was rejected without
    /// blocking. `depth` is the queue depth observed at rejection.
    Backpressure {
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// The request itself is malformed (wrong dimension, non-finite
    /// state).
    BadRequest(String),
    /// The network produced a non-finite output and no fallback expert is
    /// configured.
    NonFiniteOutput,
    /// The engine shut down before answering.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure { depth } => {
                write!(f, "queue full ({depth} requests pending); request rejected")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NonFiniteOutput => {
                write!(f, "non-finite controller output and no fallback expert")
            }
            ServeError::Shutdown => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered control request.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlResponse {
    /// The clipped control vector.
    pub control: Vec<f64>,
    /// Whether the fallback expert answered (non-finite primary output).
    pub served_by_fallback: bool,
}

struct Request {
    state: Vec<f64>,
    tx: mpsc::SyncSender<Result<ControlResponse, ServeError>>,
}

struct EngineState {
    queue: VecDeque<Request>,
    paused: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<EngineState>,
    wake: Condvar,
    state_dim: usize,
    control_dim: usize,
    queue_capacity: usize,
    tel: Arc<dyn Telemetry>,
}

/// A cloneable submission handle; this is what transports and in-process
/// clients hold.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

/// An in-flight request; [`Ticket::wait`] blocks until the batch worker
/// answers.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ControlResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the per-request [`ServeError`], or [`ServeError::Shutdown`]
    /// when the engine died first.
    pub fn wait(self) -> Result<ControlResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

impl EngineHandle {
    /// State (input) dimension served by this engine.
    pub fn state_dim(&self) -> usize {
        self.shared.state_dim
    }

    /// Control (output) dimension served by this engine.
    pub fn control_dim(&self) -> usize {
        self.shared.control_dim
    }

    /// Enqueues a request without blocking; never waits for capacity.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] on a full queue,
    /// [`ServeError::BadRequest`] on a malformed state,
    /// [`ServeError::Shutdown`] after shutdown.
    pub fn try_submit(&self, state: &[f64]) -> Result<Ticket, ServeError> {
        if state.len() != self.shared.state_dim {
            return Err(ServeError::BadRequest(format!(
                "state dimension {} != expected {}",
                state.len(),
                self.shared.state_dim
            )));
        }
        if !state.iter().all(|v| v.is_finite()) {
            return Err(ServeError::BadRequest("non-finite state component".into()));
        }
        let (tx, rx) = mpsc::sync_channel(1);
        #[allow(
            clippy::expect_used,
            reason = "a poisoned engine mutex means a worker panic; propagating is correct"
        )]
        let mut guard = self.shared.state.lock().expect("engine mutex poisoned");
        if guard.shutdown {
            return Err(ServeError::Shutdown);
        }
        if guard.queue.len() >= self.shared.queue_capacity {
            let depth = guard.queue.len();
            drop(guard);
            self.shared.tel.counter("serve.rejections", 1);
            return Err(ServeError::Backpressure { depth });
        }
        guard.queue.push_back(Request {
            state: state.to_vec(),
            tx,
        });
        drop(guard);
        self.shared.wake.notify_all();
        Ok(Ticket { rx })
    }

    /// Submits and waits for the answer — the in-process client call.
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`] and [`Ticket::wait`].
    pub fn submit(&self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.try_submit(state)?.wait()
    }
}

/// The engine: owns the batch worker thread. Dropping it shuts the worker
/// down after draining the queue.
pub struct Engine {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine serving an admitted bundle, with no fallback and
    /// no telemetry.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::bundle::BundleError`] message when the
    /// admitted spec is not servable (cannot happen for bundles that went
    /// through [`crate::admission::admit`]).
    pub fn start(admitted: &Admitted, config: EngineConfig) -> Result<Self, ServeError> {
        Self::start_with(admitted, config, None, Arc::new(NullSink))
    }

    /// Starts an engine with an optional fallback expert and telemetry.
    ///
    /// The fallback must match the bundle's dimensions; it answers any
    /// request whose primary output is non-finite.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the spec is not the `Mlp` family or
    /// the fallback dimensions disagree with the bundle.
    pub fn start_with(
        admitted: &Admitted,
        config: EngineConfig,
        fallback: Option<Arc<dyn Controller>>,
        tel: Arc<dyn Telemetry>,
    ) -> Result<Self, ServeError> {
        let (net, scale) = admitted
            .bundle
            .network()
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        Self::from_parts(
            net.clone(),
            scale.to_vec(),
            admitted.bundle.u_inf.clone(),
            admitted.bundle.u_sup.clone(),
            config,
            fallback,
            tel,
        )
    }

    /// Starts an engine from raw parts, bypassing admission. Exists for
    /// the fault drills (serving a deliberately overflowing network to
    /// exercise the fallback path) and the perf harness; production
    /// callers go through [`crate::admission::admit`] + [`Self::start`].
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on any dimension inconsistency.
    pub fn from_parts(
        net: Mlp,
        scale: Vec<f64>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
        config: EngineConfig,
        fallback: Option<Arc<dyn Controller>>,
        tel: Arc<dyn Telemetry>,
    ) -> Result<Self, ServeError> {
        let control_dim = net.output_dim();
        if scale.len() != control_dim || u_inf.len() != control_dim || u_sup.len() != control_dim {
            return Err(ServeError::BadRequest(format!(
                "scale/clip arity ({}, {}, {}) != control dimension {control_dim}",
                scale.len(),
                u_inf.len(),
                u_sup.len()
            )));
        }
        if let Some(fb) = &fallback {
            if fb.state_dim() != net.input_dim() || fb.control_dim() != control_dim {
                return Err(ServeError::BadRequest(format!(
                    "fallback expert `{}` dimensions ({}, {}) != bundle dimensions ({}, {})",
                    fb.name(),
                    fb.state_dim(),
                    fb.control_dim(),
                    net.input_dim(),
                    control_dim
                )));
            }
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                queue: VecDeque::new(),
                paused: config.start_paused,
                shutdown: false,
            }),
            wake: Condvar::new(),
            state_dim: net.input_dim(),
            control_dim,
            queue_capacity: config.queue_capacity.max(1),
            tel,
        });
        let worker_shared = shared.clone();
        let max_batch = config.max_batch.max(1);
        let deadline = config.batch_deadline;
        let worker = std::thread::Builder::new()
            .name("cocktail-serve-batcher".into())
            .spawn(move || {
                batch_worker(
                    &worker_shared,
                    &net,
                    &scale,
                    &u_inf,
                    &u_sup,
                    max_batch,
                    deadline,
                    fallback.as_deref(),
                );
            })
            .map_err(|e| ServeError::BadRequest(format!("spawn worker: {e}")))?;
        Ok(Self {
            shared,
            worker: Some(worker),
        })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: self.shared.clone(),
        }
    }

    /// Pauses the scheduler: requests keep queueing (and keep being
    /// rejected once the queue is full) but no batch runs.
    pub fn pause(&self) {
        self.set_paused(true);
    }

    /// Resumes a paused scheduler.
    pub fn resume(&self) {
        self.set_paused(false);
    }

    fn set_paused(&self, paused: bool) {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned engine mutex means a worker panic; propagating is correct"
        )]
        let mut guard = self.shared.state.lock().expect("engine mutex poisoned");
        guard.paused = paused;
        drop(guard);
        self.shared.wake.notify_all();
    }

    /// Shuts the worker down after draining the queue.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            #[allow(
                clippy::expect_used,
                reason = "a poisoned engine mutex means a worker panic; propagating is correct"
            )]
            let mut guard = self.shared.state.lock().expect("engine mutex poisoned");
            guard.shutdown = true;
            // a paused engine must still drain on shutdown
            guard.paused = false;
        }
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[allow(
    clippy::too_many_arguments,
    reason = "private worker entry point; bundling these into a struct would only rename the arguments"
)]
fn batch_worker(
    shared: &Shared,
    net: &Mlp,
    scale: &[f64],
    u_inf: &[f64],
    u_sup: &[f64],
    max_batch: usize,
    deadline: Duration,
    fallback: Option<&dyn Controller>,
) {
    let tel = shared.tel.as_ref();
    let mut cache = BatchCache::new();
    loop {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned engine mutex means a submitter panicked mid-push; nothing to salvage"
        )]
        let mut guard = shared.state.lock().expect("engine mutex poisoned");
        // wait for work (or shutdown with an empty queue)
        loop {
            if guard.queue.is_empty() || guard.paused {
                if guard.shutdown && guard.queue.is_empty() {
                    return;
                }
                #[allow(
                    clippy::expect_used,
                    reason = "condvar wait fails only on a poisoned mutex"
                )]
                {
                    guard = shared.wake.wait(guard).expect("engine mutex poisoned");
                }
            } else {
                break;
            }
        }
        // batch window: hold for up to `deadline` or `max_batch` requests
        if !deadline.is_zero() {
            let window_end = Instant::now() + deadline;
            while guard.queue.len() < max_batch && !guard.shutdown && !guard.paused {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                #[allow(
                    clippy::expect_used,
                    reason = "condvar wait fails only on a poisoned mutex"
                )]
                let (g, timeout) = shared
                    .wake
                    .wait_timeout(guard, window_end - now)
                    .expect("engine mutex poisoned");
                guard = g;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        if guard.paused && !guard.shutdown {
            continue; // drop the guard, go back to waiting
        }
        let depth = guard.queue.len();
        let take = depth.min(max_batch);
        let batch: Vec<Request> = guard.queue.drain(..take).collect();
        drop(guard);

        run_batch(
            tel, &mut cache, net, scale, u_inf, u_sup, depth, &batch, fallback,
        );
    }
}

#[allow(
    clippy::too_many_arguments,
    reason = "private helper split out of the worker loop for readability"
)]
fn run_batch(
    tel: &dyn Telemetry,
    cache: &mut BatchCache,
    net: &Mlp,
    scale: &[f64],
    u_inf: &[f64],
    u_sup: &[f64],
    depth: usize,
    batch: &[Request],
    fallback: Option<&dyn Controller>,
) {
    let span = Span::enter_with(
        tel,
        "serve/batch",
        vec![
            ("batch".to_string(), batch.len().into()),
            ("queue_depth".to_string(), depth.into()),
        ],
    );
    tel.observe("serve.batch_size", batch.len() as f64);
    tel.observe("serve.queue_depth", depth as f64);

    let x = Matrix::from_rows(batch.iter().map(|r| r.state.clone()).collect());
    // the network asserts its own activations are finite and panics
    // otherwise; catch that so one poisoned batch degrades to the
    // fallback expert instead of killing the worker thread
    let forwarded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        net.forward_batch_cached(&x, cache);
    }))
    .is_ok();
    let out = forwarded.then(|| cache.output());
    let mut fallbacks = 0u64;
    for (r, request) in batch.iter().enumerate() {
        // identical arithmetic to NnController::control followed by the
        // plant clip: y[i] * scale[i], then clamp — bit-for-bit what the
        // per-sample path produces
        let scaled: Vec<f64> = out.map_or_else(Vec::new, |m| {
            m.row(r).iter().zip(scale).map(|(y, sc)| y * sc).collect()
        });
        let response = if out.is_some() && scaled.iter().all(|v| v.is_finite()) {
            Ok(ControlResponse {
                control: vector::clip(&scaled, u_inf, u_sup),
                served_by_fallback: false,
            })
        } else if let Some(fb) = fallback {
            fallbacks += 1;
            let u = fb.control(&request.state);
            if u.iter().all(|v| v.is_finite()) {
                Ok(ControlResponse {
                    control: vector::clip(&u, u_inf, u_sup),
                    served_by_fallback: true,
                })
            } else {
                Err(ServeError::NonFiniteOutput)
            }
        } else {
            Err(ServeError::NonFiniteOutput)
        };
        // a dropped ticket (client gone) is not an engine error
        let _ = request.tx.send(response);
    }
    tel.counter("serve.requests", batch.len() as u64);
    tel.counter("serve.fallbacks", fallbacks);
    if fallbacks > 0 && tel.enabled() {
        tel.record(
            Event::point("serve.degradation")
                .with("reason", "non-finite-output")
                .with("requests", fallbacks),
        );
    }
    drop(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::InMemorySink;

    fn small_net() -> Mlp {
        MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(5)
            .build()
    }

    fn engine_with(config: EngineConfig) -> Engine {
        Engine::from_parts(
            small_net(),
            vec![2.0],
            vec![-5.0],
            vec![5.0],
            config,
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts")
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let engine = engine_with(EngineConfig::default());
        let resp = engine.handle().submit(&[0.3, -0.4]).expect("served");
        let expected = vector::clip(
            &[small_net().forward(&[0.3, -0.4])[0] * 2.0],
            &[-5.0],
            &[5.0],
        );
        assert_eq!(resp.control, expected);
        assert!(!resp.served_by_fallback);
    }

    #[test]
    fn rejects_malformed_requests_immediately() {
        let engine = engine_with(EngineConfig::default());
        let h = engine.handle();
        assert!(matches!(h.submit(&[1.0]), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            h.submit(&[f64::NAN, 0.0]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn paused_engine_rejects_above_capacity_deterministically() {
        let engine = engine_with(EngineConfig {
            queue_capacity: 3,
            start_paused: true,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| h.try_submit(&[0.1 * f64::from(i), 0.0]).expect("queued"))
            .collect();
        for _ in 0..5 {
            assert_eq!(
                h.try_submit(&[0.9, 0.9]).err(),
                Some(ServeError::Backpressure { depth: 3 })
            );
        }
        engine.resume();
        for t in tickets {
            assert!(t.wait().expect("served after resume").control[0].is_finite());
        }
    }

    #[test]
    fn fallback_answers_non_finite_outputs() {
        // identity-activation net with an overflowing weight: finite
        // parameters, non-finite output at a large input — exactly the
        // case admission cannot rule out and the runtime guard must catch
        let net = MlpBuilder::new(2)
            .hidden(4, Activation::Identity)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        let mut net = net;
        for layer in net.layers_mut() {
            for v in layer.weights_mut().as_mut_slice() {
                *v = 1e300;
            }
        }
        let fallback = Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
            vec![1.0, 1.0],
        ])));
        let tel = Arc::new(InMemorySink::new());
        let engine = Engine::from_parts(
            net,
            vec![1.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig::default(),
            Some(fallback),
            tel.clone(),
        )
        .expect("engine starts");
        let resp = engine
            .handle()
            .submit(&[2.0, 2.0])
            .expect("fallback serves");
        assert!(resp.served_by_fallback);
        assert_eq!(resp.control, vec![-4.0]); // clip(-(2+2)) at [-5, 5]
        drop(engine);
        assert_eq!(tel.counter_total("serve.fallbacks"), 1);
        assert_eq!(tel.counter_total("serve.requests"), 1);
    }

    #[test]
    fn no_fallback_means_an_explicit_error() {
        // tanh layers would keep the output finite; identity ones overflow
        let mut net = MlpBuilder::new(2)
            .hidden(4, Activation::Identity)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        for layer in net.layers_mut() {
            for v in layer.weights_mut().as_mut_slice() {
                *v = 1e300;
            }
        }
        let engine = Engine::from_parts(
            net,
            vec![1.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig::default(),
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        assert_eq!(
            engine.handle().submit(&[2.0, 2.0]).err(),
            Some(ServeError::NonFiniteOutput)
        );
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let engine = engine_with(EngineConfig {
            start_paused: true,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| h.try_submit(&[0.05 * f64::from(i), 0.1]).expect("queued"))
            .collect();
        engine.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "queued work drains on shutdown");
        }
        assert_eq!(h.submit(&[0.0, 0.0]).err(), Some(ServeError::Shutdown));
    }
}
