//! The sharded micro-batching inference engine.
//!
//! Concurrent control requests are spread across N **shards** — each shard
//! owns its own bounded queue, its own worker thread, and its own reusable
//! batch scratch — and coalesced into [`Mlp::forward_batch_cached`] calls.
//! Shard assignment is a deterministic hash of the submitting connection
//! id ([`EngineHandle::pinned`]), so a given client always lands on the
//! same queue and a drill is replayable. Each row of a batched forward is
//! bit-identical to a per-sample [`Mlp::forward`], and scaling/clipping
//! are applied per request exactly as `NnController::control` +
//! `Dynamics::clip_control` would — so the served output is invariant
//! under both the batch schedule *and* the shard count.
//!
//! The worker's steady-state loop performs **zero heap allocations per
//! request** on the outbox (binary-wire) reply path: request state buffers
//! are pooled per shard, batch scratch (input matrix + [`BatchCache`]) is
//! kept per batch-size class, and responses are fixed-size
//! [`ResponseRec`]s pushed into a capacity-reusing ring. CI asserts this
//! with a counting allocator — including across a mid-stream
//! [`Engine::promote`].
//!
//! Batching policy: by default the worker serves *whatever is queued* the
//! moment it is free (`batch_deadline` zero). Under concurrent load,
//! batches form naturally while the previous batch is being computed —
//! deadline-waiting for a fuller batch only ever adds latency when the
//! submitters are blocking on their replies (this inversion is exactly
//! what the PR-5 baseline measured). A nonzero deadline remains available
//! for sparse open-loop traffic.
//!
//! Two runtime guardrails, unchanged from the single-queue engine:
//!
//! * **Backpressure**: every shard queue is bounded; a submit against a
//!   full queue fails *immediately* with [`ServeError::Backpressure`]. A
//!   control loop must never block on its controller.
//! * **Non-finite guard**: if a (scaled) output row is non-finite — or
//!   the network's own internal finiteness assertion panics mid-batch —
//!   the request is answered by the configured fallback expert and
//!   `serve.fallbacks` is incremented; with no fallback the request fails
//!   with [`ServeError::NonFiniteOutput`].
//!
//! # Hot rollout
//!
//! The engine's models live in an **epoch-versioned
//! [`Arc`]-swapped set**: [`Engine::propose`] installs an admitted
//! candidate as a *canary* serving a deterministic fraction of traffic
//! ([`routes_to_canary`], a pure function of the request id), while every
//! canary answer is shadow-recomputed through the incumbent and the
//! clipped divergence histogrammed. [`Engine::promote`] and
//! [`Engine::rollback`] swap the set atomically; shard workers observe
//! the new epoch at the next batch boundary (a `Relaxed`-free
//! acquire/release handshake, so a request submitted after `promote`
//! returns is always served by the new incumbent). A canary batch is
//! answered **only after** the whole sub-batch passes three guards
//! (finiteness, per-request divergence budget, cumulative envelope
//! budget); a trip auto-rolls the engine back and answers the batch from
//! the incumbent's shadow outputs, so zero candidate responses escape.
//! See [`crate::rollout`] for the state machine and budgets.

use crate::admission::{self, AdmissionConfig, Admitted};
use crate::bundle::{fnv1a_64, ControllerBundle};
use crate::replay::encode_state_bits;
use crate::rollout::{
    routes_to_canary, DriftConfig, DriftDetector, DriftReport, RolloutAction, RolloutBudget,
    RolloutConfig, RolloutError, RolloutEvent, RolloutLog, RolloutStatus,
};
use crate::wire::{self, ResponseRec, MAX_WIRE_CONTROL_DIM};
use cocktail_control::Controller;
use cocktail_math::Matrix;
use cocktail_nn::{BatchCache, BatchCacheF32, ForwardKernel, Mlp, MlpF32};
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, MutexGuard};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// First request id handed out to ticket (in-process) submissions — far
/// above the binary wire's practical id space, so internally-assigned ids
/// never collide with client-chosen wire ids in a recorded stream.
const INTERNAL_ID_BASE: u64 = 1 << 48;

/// Which forward kernel the shard workers serve with.
///
/// [`ServeTier::Exact`] (the default) preserves the engine's founding
/// invariant: every batched row is bit-identical to a per-sample
/// [`Mlp::forward`]. The reduced-precision tiers trade that invariant for
/// throughput, bounded by the certificate the bundle ships (and admission
/// re-derives): served outputs stay within `|scale| ×` the certified
/// sup-norm error of the exact path over the bundle's input domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeTier {
    /// `f64` weights, libm activations — bit-identical to per-sample.
    #[default]
    Exact,
    /// `f64` weights with the certified Padé fast-tanh activation kernel.
    FastTanh,
    /// `f32`-quantized weights and `f32` fast-tanh; requires the network
    /// to be quantizable (Tanh / `ReLU` / Identity activations only).
    F32,
}

/// Scheduler knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Largest number of requests folded into one batched forward.
    pub max_batch: usize,
    /// How long a shard worker holds an open batch for more requests.
    /// Zero (the default) means "serve whatever is queued immediately";
    /// under load batches still form naturally while the previous batch
    /// computes.
    pub batch_deadline: Duration,
    /// Bounded queue capacity **per shard**; submits beyond it are
    /// rejected.
    pub queue_capacity: usize,
    /// Start with the scheduler paused (deterministic batch composition
    /// for tests: queue requests, then [`Engine::resume`]).
    pub start_paused: bool,
    /// Engine shards: independent queue + worker + scratch, ideally one
    /// per core. Connection ids hash onto shards deterministically.
    pub shards: usize,
    /// Enable the served-output drift detector ([`crate::rollout`]) with
    /// these knobs; `None` (the default) keeps the hot path free of it.
    pub drift: Option<DriftConfig>,
    /// Forward kernel tier; [`ServeTier::Exact`] (the default) keeps the
    /// batched ≡ per-sample bit-identity invariant. Applies to incumbent,
    /// canary and shadow forwards alike.
    pub tier: ServeTier,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            batch_deadline: Duration::ZERO,
            queue_capacity: 256,
            start_paused: false,
            shards: 1,
            drift: None,
            tier: ServeTier::Exact,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The shard's bounded queue is full; the request was rejected
    /// without blocking. `depth` is the queue depth observed at rejection.
    Backpressure {
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// The request itself is malformed (wrong dimension, non-finite
    /// state).
    BadRequest(String),
    /// The network produced a non-finite output and no fallback expert is
    /// configured.
    NonFiniteOutput,
    /// The engine shut down before answering.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure { depth } => {
                write!(f, "queue full ({depth} requests pending); request rejected")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::NonFiniteOutput => {
                write!(f, "non-finite controller output and no fallback expert")
            }
            ServeError::Shutdown => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered control request.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlResponse {
    /// The clipped control vector.
    pub control: Vec<f64>,
    /// Whether the fallback expert answered (non-finite primary output).
    pub served_by_fallback: bool,
}

/// The allocation-free reply ring the reactor transport drains.
///
/// Shard workers push fixed-size [`ResponseRec`]s; the consumer drains
/// them into its own reused buffer. An optional waker runs after every
/// push so an event loop blocked in `epoll_wait` can be poked (the waker
/// must be cheap and must not panic). Blocking consumers (tests, the
/// threaded transport) can instead [`Outbox::wait_nonempty`].
pub struct Outbox {
    queue: Mutex<VecDeque<ResponseRec>>,
    ready: Condvar,
    waker: Option<Box<dyn Fn() + Send + Sync>>,
}

impl Outbox {
    /// An outbox with no waker (consumers poll or block on
    /// [`Outbox::wait_nonempty`]).
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::with_capacity(64)),
            ready: Condvar::new(),
            waker: None,
        }
    }

    /// An outbox that runs `waker` after each push (e.g. write one byte
    /// to a reactor's wake pipe).
    #[must_use]
    pub fn with_waker(waker: impl Fn() + Send + Sync + 'static) -> Self {
        Self {
            queue: Mutex::new(VecDeque::with_capacity(64)),
            ready: Condvar::new(),
            waker: Some(Box::new(waker)),
        }
    }

    /// Enqueues a record and runs the waker. Shard workers use this for
    /// answers; transports may also push synchronous-rejection records so
    /// one connection's replies stay in submission order.
    pub fn push(&self, rec: ResponseRec) {
        if let Ok(mut q) = self.queue.lock() {
            q.push_back(rec);
        }
        self.ready.notify_all();
        if let Some(waker) = &self.waker {
            waker();
        }
    }

    /// Moves every queued record into `out` (appending; capacity of both
    /// buffers is reused). Returns how many were drained.
    pub fn drain_into(&self, out: &mut Vec<ResponseRec>) -> usize {
        let Ok(mut q) = self.queue.lock() else {
            return 0;
        };
        let n = q.len();
        out.extend(q.drain(..));
        n
    }

    /// Blocks until the outbox is non-empty or `timeout` passes; returns
    /// whether records are available.
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let Ok(mut q) = self.queue.lock() else {
            return false;
        };
        let deadline = Instant::now() + timeout;
        while q.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            match self.ready.wait_timeout(q, deadline - now) {
                Ok((guard, _)) => q = guard,
                Err(_) => return false,
            }
        }
        true
    }
}

impl Default for Outbox {
    fn default() -> Self {
        Self::new()
    }
}

enum Reply {
    /// One-shot channel feeding a [`Ticket`] (in-process and threaded
    /// transport clients).
    Channel(mpsc::SyncSender<Result<ControlResponse, ServeError>>),
    /// Fixed-size record pushed onto a shared reply ring (reactor /
    /// binary-wire clients). Allocation-free on the worker side.
    Outbox { outbox: Arc<Outbox>, id: u64 },
}

struct Request {
    /// The canary-routing identity: the wire id for remote clients, an
    /// engine-assigned id (from [`INTERNAL_ID_BASE`]) for tickets.
    id: u64,
    state: Vec<f64>,
    reply: Reply,
}

/// One controller's servable parts: network plus its scale and clip
/// envelope. Shared by [`Arc`] between the model set and shard workers —
/// swapping controllers is a pointer swap, never a weight copy.
struct ModelParams {
    net: Mlp,
    /// The `f32`-quantized twin, present iff the engine runs at
    /// [`ServeTier::F32`]; quantization happens once at install time.
    net32: Option<MlpF32>,
    scale: Vec<f64>,
    u_inf: Vec<f64>,
    u_sup: Vec<f64>,
}

impl ModelParams {
    /// Builds the servable parts for `tier`, quantizing the `f32` twin up
    /// front. Fails when the `F32` tier is requested for a network whose
    /// activations the quantized kernel does not cover.
    fn for_tier(
        net: Mlp,
        scale: Vec<f64>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
        tier: ServeTier,
    ) -> Result<Self, String> {
        let net32 = match tier {
            ServeTier::F32 => Some(MlpF32::quantize(&net).ok_or_else(|| {
                "network has activations the f32 tier does not cover \
                 (Tanh / ReLU / Identity only)"
                    .to_string()
            })?),
            _ => None,
        };
        Ok(Self {
            net,
            net32,
            scale,
            u_inf,
            u_sup,
        })
    }
}

/// A canary candidate plus its traffic split and auto-rollback budget.
struct CanarySlot {
    params: Arc<ModelParams>,
    fraction_permille: u32,
    budget: RolloutBudget,
}

/// The epoch-versioned model set shard workers serve from. Immutable
/// once published; every transition publishes a fresh `Arc<ModelSet>`
/// and bumps the epoch counter workers poll at batch boundaries.
struct ModelSet {
    epoch: u64,
    incumbent: Arc<ModelParams>,
    canary: Option<CanarySlot>,
}

struct ShardState {
    queue: VecDeque<Request>,
    /// Pooled state buffers: submits pop one instead of allocating, the
    /// worker returns them after each batch.
    free: Vec<Vec<f64>>,
    paused: bool,
    shutdown: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    wake: Condvar,
}

struct Shared {
    shards: Vec<Shard>,
    rr: AtomicUsize,
    state_dim: usize,
    control_dim: usize,
    queue_capacity: usize,
    /// The published model set; workers clone the `Arc` out (refcount
    /// bump, no allocation) whenever `model_epoch` moves.
    models: Mutex<Arc<ModelSet>>,
    /// Epoch of the latest published set. Stored with `Release` after
    /// the set is swapped; workers `Acquire`-load it per batch.
    model_epoch: AtomicU64,
    /// Forward kernel tier every shard serves with (fixed at start).
    tier: ServeTier,
    rollout: Mutex<RolloutLog>,
    drift: Mutex<Option<DriftDetector>>,
    /// Cached `drift.is_some()` so the hot path skips the lock entirely
    /// when no detector is configured.
    drift_enabled: bool,
    next_req_id: AtomicU64,
    tel: Arc<dyn Telemetry>,
}

impl Shared {
    fn shard_for(&self, conn_id: u64) -> usize {
        #[allow(
            clippy::cast_possible_truncation,
            reason = "modulo shard count, far below 2^32"
        )]
        {
            (fnv1a_64(&conn_id.to_le_bytes()) % self.shards.len() as u64) as usize
        }
    }

    fn lock_models(&self) -> MutexGuard<'_, Arc<ModelSet>> {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned model mutex means a rollout panic; propagating is correct"
        )]
        let guard = self.models.lock().expect("model mutex poisoned");
        guard
    }

    fn lock_rollout(&self) -> MutexGuard<'_, RolloutLog> {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned rollout mutex means a worker panic; propagating is correct"
        )]
        let guard = self.rollout.lock().expect("rollout mutex poisoned");
        guard
    }

    fn current_models(&self) -> Arc<ModelSet> {
        self.lock_models().clone()
    }

    /// Appends to the structured trail and mirrors it as a
    /// `serve.rollout` telemetry point.
    fn push_event(&self, epoch: u64, action: RolloutAction, detail: &str) {
        if self.tel.enabled() {
            self.tel.record(
                Event::point("serve.rollout")
                    .with("epoch", epoch)
                    .with("action", action.label())
                    .with("detail", detail),
            );
        }
        self.lock_rollout().events.push(RolloutEvent {
            epoch,
            action,
            detail: detail.to_string(),
        });
    }

    /// Installs `params` as a canary at `cfg`'s split; the epoch bumps so
    /// every shard observes the candidate at its next batch boundary.
    fn install_candidate(
        &self,
        params: ModelParams,
        cfg: &RolloutConfig,
    ) -> Result<u64, RolloutError> {
        let fraction = cfg.fraction_permille.min(1000);
        let mut models = self.lock_models();
        if models.canary.is_some() {
            return Err(RolloutError::CanaryInFlight);
        }
        let epoch = models.epoch + 1;
        *models = Arc::new(ModelSet {
            epoch,
            incumbent: models.incumbent.clone(),
            canary: Some(CanarySlot {
                params: Arc::new(params),
                fraction_permille: fraction,
                budget: cfg.budget,
            }),
        });
        self.model_epoch.store(epoch, Ordering::Release);
        drop(models);
        self.lock_rollout().reset_canary_counters();
        self.push_event(
            epoch,
            RolloutAction::Proposed,
            &format!("canary at {fraction}/1000 of traffic"),
        );
        self.tel.counter("serve.proposals", 1);
        Ok(epoch)
    }

    fn promote(&self) -> Result<u64, RolloutError> {
        let mut models = self.lock_models();
        let Some(slot) = models.canary.as_ref() else {
            return Err(RolloutError::NoCandidate);
        };
        let epoch = models.epoch + 1;
        let incumbent = slot.params.clone();
        *models = Arc::new(ModelSet {
            epoch,
            incumbent,
            canary: None,
        });
        self.model_epoch.store(epoch, Ordering::Release);
        drop(models);
        self.push_event(
            epoch,
            RolloutAction::Promoted,
            "candidate promoted to incumbent",
        );
        self.tel.counter("serve.promotions", 1);
        Ok(epoch)
    }

    fn rollback(&self, detail: &str) -> Result<u64, RolloutError> {
        let mut models = self.lock_models();
        if models.canary.is_none() {
            return Err(RolloutError::NoCandidate);
        }
        let epoch = models.epoch + 1;
        *models = Arc::new(ModelSet {
            epoch,
            incumbent: models.incumbent.clone(),
            canary: None,
        });
        self.model_epoch.store(epoch, Ordering::Release);
        drop(models);
        self.push_event(epoch, RolloutAction::RolledBack, detail);
        self.tel.counter("serve.rollbacks", 1);
        Ok(epoch)
    }

    /// A guard trip from a shard worker. Epoch-checked under the model
    /// lock: when several shards trip the same canary concurrently, only
    /// the first transition happens and the rest are no-ops (their
    /// batches are still answered from shadow outputs locally).
    fn auto_rollback(&self, observed_epoch: u64, reason: &'static str) {
        let mut models = self.lock_models();
        if models.epoch != observed_epoch || models.canary.is_none() {
            return;
        }
        let epoch = models.epoch + 1;
        *models = Arc::new(ModelSet {
            epoch,
            incumbent: models.incumbent.clone(),
            canary: None,
        });
        self.model_epoch.store(epoch, Ordering::Release);
        drop(models);
        self.push_event(epoch, RolloutAction::AutoRolledBack, reason);
        self.tel.counter("serve.rollbacks", 1);
    }

    fn submit(
        &self,
        shard_idx: usize,
        id: u64,
        state: &[f64],
        reply: Reply,
    ) -> Result<(), ServeError> {
        if state.len() != self.state_dim {
            return Err(ServeError::BadRequest(format!(
                "state dimension {} != expected {}",
                state.len(),
                self.state_dim
            )));
        }
        if !state.iter().all(|v| v.is_finite()) {
            return Err(ServeError::BadRequest("non-finite state component".into()));
        }
        let shard = &self.shards[shard_idx];
        #[allow(
            clippy::expect_used,
            reason = "a poisoned engine mutex means a worker panic; propagating is correct"
        )]
        let mut guard = shard.state.lock().expect("engine mutex poisoned");
        if guard.shutdown {
            return Err(ServeError::Shutdown);
        }
        if guard.queue.len() >= self.queue_capacity {
            let depth = guard.queue.len();
            drop(guard);
            self.tel.counter("serve.rejections", 1);
            return Err(ServeError::Backpressure { depth });
        }
        let mut buf = guard
            .free
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.state_dim));
        buf.clear();
        buf.extend_from_slice(state);
        guard.queue.push_back(Request {
            id,
            state: buf,
            reply,
        });
        drop(guard);
        shard.wake.notify_all();
        if self.tel.enabled() {
            // the capture that makes `cocktail-serve replay` possible:
            // state components as exact bit patterns, never decimal
            self.tel.record(
                Event::point("serve.request")
                    .with("id", id)
                    .with("state_bits", encode_state_bits(state)),
            );
        }
        Ok(())
    }
}

/// A cloneable submission handle; this is what transports and in-process
/// clients hold. Unpinned submits round-robin across shards; transports
/// should [`EngineHandle::pinned`] each connection instead.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

/// A handle pinned to the shard a connection id hashes to. All requests
/// from one connection share a queue, which keeps rejection patterns and
/// batch composition replayable.
#[derive(Clone)]
pub struct PinnedHandle {
    shared: Arc<Shared>,
    shard: usize,
}

/// An in-flight request; [`Ticket::wait`] blocks until a shard worker
/// answers.
pub struct Ticket {
    rx: mpsc::Receiver<Result<ControlResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the per-request [`ServeError`], or [`ServeError::Shutdown`]
    /// when the engine died first.
    pub fn wait(self) -> Result<ControlResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

impl EngineHandle {
    /// State (input) dimension served by this engine.
    pub fn state_dim(&self) -> usize {
        self.shared.state_dim
    }

    /// Control (output) dimension served by this engine.
    pub fn control_dim(&self) -> usize {
        self.shared.control_dim
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The handle pinned to the shard `conn_id` hashes to
    /// (FNV-1a(`conn_id`) mod shards — deterministic, evenly spread for
    /// sequential ids).
    #[must_use]
    pub fn pinned(&self, conn_id: u64) -> PinnedHandle {
        PinnedHandle {
            shard: self.shared.shard_for(conn_id),
            shared: self.shared.clone(),
        }
    }

    /// Enqueues a request without blocking, on a round-robin shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] on a full shard queue,
    /// [`ServeError::BadRequest`] on a malformed state,
    /// [`ServeError::Shutdown`] after shutdown.
    pub fn try_submit(&self, state: &[f64]) -> Result<Ticket, ServeError> {
        let shard = self.shared.rr.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        submit_ticket(&self.shared, shard, state)
    }

    /// Submits and waits for the answer — the in-process client call.
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`] and [`Ticket::wait`].
    pub fn submit(&self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.try_submit(state)?.wait()
    }
}

impl PinnedHandle {
    /// State (input) dimension served by this engine.
    pub fn state_dim(&self) -> usize {
        self.shared.state_dim
    }

    /// Control (output) dimension served by this engine.
    pub fn control_dim(&self) -> usize {
        self.shared.control_dim
    }

    /// The shard index this handle is pinned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Enqueues a request on the pinned shard without blocking.
    ///
    /// # Errors
    ///
    /// See [`EngineHandle::try_submit`].
    pub fn try_submit(&self, state: &[f64]) -> Result<Ticket, ServeError> {
        submit_ticket(&self.shared, self.shard, state)
    }

    /// Enqueues a request with an explicit request id — the id canary
    /// routing hashes ([`routes_to_canary`]), so tests and replay drive
    /// exactly the traffic split a recorded stream saw.
    ///
    /// # Errors
    ///
    /// See [`EngineHandle::try_submit`].
    pub fn try_submit_with_id(&self, id: u64, state: &[f64]) -> Result<Ticket, ServeError> {
        let (tx, rx) = mpsc::sync_channel(1);
        self.shared
            .submit(self.shard, id, state, Reply::Channel(tx))?;
        Ok(Ticket { rx })
    }

    /// Submits and waits for the answer.
    ///
    /// # Errors
    ///
    /// See [`EngineHandle::submit`].
    pub fn submit(&self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.try_submit(state)?.wait()
    }

    /// Enqueues a request whose answer is pushed onto `outbox` as a
    /// fixed-size [`ResponseRec`] carrying `id` — the allocation-free
    /// reply path the reactor transport uses.
    ///
    /// # Errors
    ///
    /// As [`Self::try_submit`], plus [`ServeError::BadRequest`] when the
    /// engine's control dimension exceeds the wire limit
    /// ([`MAX_WIRE_CONTROL_DIM`]).
    pub fn try_submit_outbox(
        &self,
        id: u64,
        state: &[f64],
        outbox: &Arc<Outbox>,
    ) -> Result<(), ServeError> {
        if self.shared.control_dim > MAX_WIRE_CONTROL_DIM {
            return Err(ServeError::BadRequest(format!(
                "control dimension {} exceeds the binary-wire limit {MAX_WIRE_CONTROL_DIM}",
                self.shared.control_dim
            )));
        }
        self.shared.submit(
            self.shard,
            id,
            state,
            Reply::Outbox {
                outbox: outbox.clone(),
                id,
            },
        )
    }
}

fn submit_ticket(shared: &Arc<Shared>, shard: usize, state: &[f64]) -> Result<Ticket, ServeError> {
    let id = shared.next_req_id.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = mpsc::sync_channel(1);
    shared.submit(shard, id, state, Reply::Channel(tx))?;
    Ok(Ticket { rx })
}

/// The engine: owns the shard worker threads. Dropping it shuts the
/// workers down after draining every queue.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine serving an admitted bundle, with no fallback and
    /// no telemetry.
    ///
    /// # Errors
    ///
    /// Returns the [`crate::bundle::BundleError`] message when the
    /// admitted spec is not servable (cannot happen for bundles that went
    /// through [`crate::admission::admit`]).
    pub fn start(admitted: &Admitted, config: EngineConfig) -> Result<Self, ServeError> {
        Self::start_with(admitted, config, None, Arc::new(NullSink))
    }

    /// Starts an engine with an optional fallback expert and telemetry.
    ///
    /// The fallback must match the bundle's dimensions; it answers any
    /// request whose primary output is non-finite.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the spec is not the `Mlp` family or
    /// the fallback dimensions disagree with the bundle.
    pub fn start_with(
        admitted: &Admitted,
        config: EngineConfig,
        fallback: Option<Arc<dyn Controller>>,
        tel: Arc<dyn Telemetry>,
    ) -> Result<Self, ServeError> {
        let (net, scale) = admitted
            .bundle
            .network()
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        Self::from_parts(
            net.clone(),
            scale.to_vec(),
            admitted.bundle.u_inf.clone(),
            admitted.bundle.u_sup.clone(),
            config,
            fallback,
            tel,
        )
    }

    /// Starts an engine from raw parts, bypassing admission. Exists for
    /// the fault drills (serving a deliberately overflowing network to
    /// exercise the fallback path) and the perf harness; production
    /// callers go through [`crate::admission::admit`] + [`Self::start`].
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on any dimension inconsistency.
    #[allow(
        clippy::needless_pass_by_value,
        reason = "callers hand over ownership; the engine keeps the parts inside the shared model set"
    )]
    pub fn from_parts(
        net: Mlp,
        scale: Vec<f64>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
        config: EngineConfig,
        fallback: Option<Arc<dyn Controller>>,
        tel: Arc<dyn Telemetry>,
    ) -> Result<Self, ServeError> {
        let control_dim = net.output_dim();
        if scale.len() != control_dim || u_inf.len() != control_dim || u_sup.len() != control_dim {
            return Err(ServeError::BadRequest(format!(
                "scale/clip arity ({}, {}, {}) != control dimension {control_dim}",
                scale.len(),
                u_inf.len(),
                u_sup.len()
            )));
        }
        if let Some(fb) = &fallback {
            if fb.state_dim() != net.input_dim() || fb.control_dim() != control_dim {
                return Err(ServeError::BadRequest(format!(
                    "fallback expert `{}` dimensions ({}, {}) != bundle dimensions ({}, {})",
                    fb.name(),
                    fb.state_dim(),
                    fb.control_dim(),
                    net.input_dim(),
                    control_dim
                )));
            }
        }
        let n_shards = config.shards.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let shards = (0..n_shards)
            .map(|_| Shard {
                state: Mutex::new(ShardState {
                    queue: VecDeque::with_capacity(queue_capacity),
                    free: Vec::with_capacity(queue_capacity),
                    paused: config.start_paused,
                    shutdown: false,
                }),
                wake: Condvar::new(),
            })
            .collect();
        let incumbent = Arc::new(
            ModelParams::for_tier(net, scale, u_inf, u_sup, config.tier)
                .map_err(ServeError::BadRequest)?,
        );
        let drift = config
            .drift
            .map(|cfg| DriftDetector::new(cfg, &incumbent.u_inf, &incumbent.u_sup));
        let shared = Arc::new(Shared {
            shards,
            rr: AtomicUsize::new(0),
            state_dim: incumbent.net.input_dim(),
            control_dim,
            queue_capacity,
            models: Mutex::new(Arc::new(ModelSet {
                epoch: 1,
                incumbent,
                canary: None,
            })),
            model_epoch: AtomicU64::new(1),
            tier: config.tier,
            rollout: Mutex::new(RolloutLog::default()),
            drift_enabled: drift.is_some(),
            drift: Mutex::new(drift),
            next_req_id: AtomicU64::new(INTERNAL_ID_BASE),
            tel,
        });
        let max_batch = config.max_batch.max(1);
        let deadline = config.batch_deadline;
        let mut workers = Vec::with_capacity(n_shards);
        for shard_idx in 0..n_shards {
            let worker_shared = shared.clone();
            let fallback = fallback.clone();
            let worker = std::thread::Builder::new()
                .name(format!("cocktail-serve-shard-{shard_idx}"))
                .spawn(move || {
                    shard_worker(
                        &worker_shared,
                        shard_idx,
                        &WorkerParams {
                            max_batch,
                            deadline,
                            fallback,
                        },
                    );
                })
                .map_err(|e| ServeError::BadRequest(format!("spawn worker: {e}")))?;
            workers.push(worker);
        }
        Ok(Self { shared, workers })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: self.shared.clone(),
        }
    }

    /// Proposes `bundle` as a canary: the full admission gate runs here,
    /// off the hot path, then the candidate installs at `cfg`'s traffic
    /// split. Returns the new model epoch.
    ///
    /// # Errors
    ///
    /// [`RolloutError::Refused`] when admission refuses the bundle,
    /// [`RolloutError::Incompatible`] on a dimension mismatch with the
    /// running engine, [`RolloutError::CanaryInFlight`] when a canary is
    /// already installed.
    pub fn propose(
        &self,
        bundle: ControllerBundle,
        cfg: &RolloutConfig,
    ) -> Result<u64, RolloutError> {
        let admitted = admission::admit_candidate(
            bundle,
            self.shared.state_dim,
            self.shared.control_dim,
            &AdmissionConfig::default(),
            self.shared.tel.as_ref(),
        )
        .map_err(RolloutError::Refused)?;
        self.propose_admitted(&admitted, cfg)
    }

    /// Installs an already-admitted candidate as a canary (callers that
    /// ran [`crate::admission::admit_with`] themselves). Returns the new
    /// model epoch.
    ///
    /// # Errors
    ///
    /// See [`Self::propose`] (minus [`RolloutError::Refused`]).
    pub fn propose_admitted(
        &self,
        admitted: &Admitted,
        cfg: &RolloutConfig,
    ) -> Result<u64, RolloutError> {
        let (net, scale) = admitted
            .bundle
            .network()
            .map_err(|e| RolloutError::Incompatible(e.to_string()))?;
        self.propose_parts(
            net.clone(),
            scale.to_vec(),
            admitted.bundle.u_inf.clone(),
            admitted.bundle.u_sup.clone(),
            cfg,
        )
    }

    /// Installs candidate parts as a canary, bypassing admission. Exists
    /// for the fault drills (poisoned candidates that admission would
    /// refuse, to exercise auto-rollback); production callers go through
    /// [`Self::propose`]. Returns the new model epoch.
    ///
    /// # Errors
    ///
    /// [`RolloutError::Incompatible`] on a dimension mismatch,
    /// [`RolloutError::CanaryInFlight`] when a canary is already
    /// installed.
    #[allow(
        clippy::needless_pass_by_value,
        reason = "the canary slot takes ownership of the parts"
    )]
    pub fn propose_parts(
        &self,
        net: Mlp,
        scale: Vec<f64>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
        cfg: &RolloutConfig,
    ) -> Result<u64, RolloutError> {
        let (sd, cd) = (self.shared.state_dim, self.shared.control_dim);
        if net.input_dim() != sd
            || net.output_dim() != cd
            || scale.len() != cd
            || u_inf.len() != cd
            || u_sup.len() != cd
        {
            return Err(RolloutError::Incompatible(format!(
                "candidate dimensions ({} -> {}, scale {}, clip {}/{}) != engine ({sd} -> {cd})",
                net.input_dim(),
                net.output_dim(),
                scale.len(),
                u_inf.len(),
                u_sup.len()
            )));
        }
        let params = ModelParams::for_tier(net, scale, u_inf, u_sup, self.shared.tier)
            .map_err(RolloutError::Incompatible)?;
        self.shared.install_candidate(params, cfg)
    }

    /// Atomically makes the canary the incumbent on every shard (observed
    /// at the next batch boundary). Returns the new model epoch; any
    /// request submitted after this returns is served by the promoted
    /// controller.
    ///
    /// # Errors
    ///
    /// [`RolloutError::NoCandidate`] when no canary is in flight.
    pub fn promote(&self) -> Result<u64, RolloutError> {
        self.shared.promote()
    }

    /// Drops the canary and restores incumbent-only serving, recording
    /// `detail` (e.g. `"operator"`) in the rollout trail. Returns the new
    /// model epoch.
    ///
    /// # Errors
    ///
    /// [`RolloutError::NoCandidate`] when no canary is in flight.
    pub fn rollback(&self, detail: &str) -> Result<u64, RolloutError> {
        self.shared.rollback(detail)
    }

    /// Current model epoch (bumps on propose/promote/rollback).
    pub fn model_epoch(&self) -> u64 {
        self.shared.model_epoch.load(Ordering::Acquire)
    }

    /// Point-in-time rollout snapshot: epoch, canary state, and the
    /// shadow-comparison counters/histogram.
    pub fn rollout_status(&self) -> RolloutStatus {
        let models = self.shared.current_models();
        let log = self.shared.lock_rollout();
        RolloutStatus {
            epoch: models.epoch,
            canary_active: models.canary.is_some(),
            canary_fraction_permille: models
                .canary
                .as_ref()
                .map_or(0, |slot| slot.fraction_permille),
            canary_served: log.canary_served,
            canary_shadowed: log.canary_shadowed,
            nonfinite_canary_outputs: log.nonfinite_canary_outputs,
            envelope_violations: log.envelope_violations,
            divergence: log.divergence,
        }
    }

    /// The structured rollout trail, oldest first.
    pub fn rollout_events(&self) -> Vec<RolloutEvent> {
        self.shared.lock_rollout().events.clone()
    }

    /// Every drift alarm raised so far, oldest first.
    pub fn drift_reports(&self) -> Vec<DriftReport> {
        self.shared.lock_rollout().drift_reports.clone()
    }

    /// Drops the drift detector's frozen baseline (call after an
    /// *intentional* behavior change, e.g. a promote). No-op when drift
    /// detection is off.
    pub fn rebaseline_drift(&self) {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned drift mutex means a worker panic; propagating is correct"
        )]
        let mut guard = self.shared.drift.lock().expect("drift mutex poisoned");
        if let Some(det) = guard.as_mut() {
            det.rebaseline();
        }
    }

    /// Pauses every shard scheduler: requests keep queueing (and keep
    /// being rejected once a queue is full) but no batch runs.
    pub fn pause(&self) {
        self.set_paused(true);
    }

    /// Resumes a paused scheduler.
    pub fn resume(&self) {
        self.set_paused(false);
    }

    fn set_paused(&self, paused: bool) {
        for shard in &self.shared.shards {
            #[allow(
                clippy::expect_used,
                reason = "a poisoned engine mutex means a worker panic; propagating is correct"
            )]
            let mut guard = shard.state.lock().expect("engine mutex poisoned");
            guard.paused = paused;
            drop(guard);
            shard.wake.notify_all();
        }
    }

    /// Shuts every shard worker down after draining its queue.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for shard in &self.shared.shards {
            #[allow(
                clippy::expect_used,
                reason = "a poisoned engine mutex means a worker panic; propagating is correct"
            )]
            let mut guard = shard.state.lock().expect("engine mutex poisoned");
            guard.shutdown = true;
            // a paused engine must still drain on shutdown
            guard.paused = false;
            drop(guard);
            shard.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Immutable per-shard worker parameters (the models travel separately,
/// through the epoch-versioned [`ModelSet`]).
struct WorkerParams {
    max_batch: usize,
    deadline: Duration,
    fallback: Option<Arc<dyn Controller>>,
}

/// Where one batched request is served from.
#[derive(Clone, Copy)]
enum Route {
    /// Row index into the incumbent sub-batch.
    Incumbent(usize),
    /// Row index into the canary sub-batch.
    Canary(usize),
}

/// Per-shard reusable scratch. `inputs[k]`/`caches[k]` are the staging
/// matrix and forward cache for batch-size class `k`; each class is
/// allocated on first use and reused forever after, so a steady-state
/// batch touches no allocator no matter how batch sizes fluctuate. The
/// canary path keeps its own size classes (`can_*`, plus the shadow
/// caches the incumbent recomputes canary rows into).
struct ShardScratch {
    batch: Vec<Request>,
    spent: Vec<Vec<f64>>,
    route: Vec<Route>,
    inputs: Vec<Option<Matrix>>,
    caches: Vec<TierSlot>,
    can_inputs: Vec<Option<Matrix>>,
    can_caches: Vec<TierSlot>,
    shadow_caches: Vec<TierSlot>,
    divs: Vec<f64>,
    scaled: Vec<f64>,
}

impl ShardScratch {
    fn new(max_batch: usize, control_dim: usize, capacity: usize) -> Self {
        Self {
            batch: Vec::with_capacity(max_batch),
            spent: Vec::with_capacity(capacity + max_batch),
            route: Vec::with_capacity(max_batch),
            inputs: (0..=max_batch).map(|_| None).collect(),
            caches: (0..=max_batch).map(|_| TierSlot::default()).collect(),
            can_inputs: (0..=max_batch).map(|_| None).collect(),
            can_caches: (0..=max_batch).map(|_| TierSlot::default()).collect(),
            shadow_caches: (0..=max_batch).map(|_| TierSlot::default()).collect(),
            divs: Vec::with_capacity(max_batch),
            scaled: vec![0.0; control_dim],
        }
    }
}

/// One batch-size class's forward scratch, covering every [`ServeTier`]:
/// the `f64` kernels fill `cache`, the `f32` tier fills `cache32`/`out32`.
/// Like the old per-class `BatchCache`s, each member is allocated on first
/// use and reused forever after.
#[derive(Default)]
struct TierSlot {
    cache: Option<BatchCache>,
    cache32: Option<BatchCacheF32>,
    out32: Option<Matrix>,
}

impl TierSlot {
    /// Runs `params`' forward for `tier` over `input` into this slot,
    /// catching the network's internal finiteness panic; `false` means the
    /// batch is poisoned and must degrade to the fallback expert.
    fn forward(&mut self, params: &ModelParams, tier: ServeTier, input: &Matrix) -> bool {
        match (tier, &params.net32) {
            (ServeTier::F32, Some(net32)) => {
                let out = self
                    .out32
                    .get_or_insert_with(|| Matrix::zeros(input.rows(), net32.output_dim()));
                let cache = self.cache32.get_or_insert_with(BatchCacheF32::new);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    net32.forward_batch_into(input, out, cache);
                }))
                .is_ok()
            }
            _ => {
                let kernel = match tier {
                    ServeTier::FastTanh => ForwardKernel::FastTanh,
                    _ => ForwardKernel::Exact,
                };
                let cache = self.cache.get_or_insert_with(BatchCache::new);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    params.net.forward_batch_cached_kernel(input, cache, kernel);
                }))
                .is_ok()
            }
        }
    }

    /// Row `j` of the last forward's output, if one ran.
    fn output_row(&self, tier: ServeTier, j: usize) -> Option<&[f64]> {
        match tier {
            ServeTier::F32 => self.out32.as_ref().map(|m| m.row(j)),
            _ => self.cache.as_ref().map(|c| c.output().row(j)),
        }
    }
}

fn shard_worker(shared: &Shared, shard_idx: usize, params: &WorkerParams) {
    let tel = shared.tel.as_ref();
    let shard = &shared.shards[shard_idx];
    let mut models = shared.current_models();
    let mut scratch =
        ShardScratch::new(params.max_batch, shared.control_dim, shared.queue_capacity);
    loop {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned engine mutex means a submitter panicked mid-push; nothing to salvage"
        )]
        let mut guard = shard.state.lock().expect("engine mutex poisoned");
        // return the previous batch's state buffers to the submit pool
        while let Some(mut buf) = scratch.spent.pop() {
            if guard.free.len() < shared.queue_capacity + params.max_batch {
                buf.clear();
                guard.free.push(buf);
            }
        }
        // wait for work (or shutdown with an empty queue)
        loop {
            if guard.queue.is_empty() || guard.paused {
                if guard.shutdown && guard.queue.is_empty() {
                    return;
                }
                #[allow(
                    clippy::expect_used,
                    reason = "condvar wait fails only on a poisoned mutex"
                )]
                {
                    guard = shard.wake.wait(guard).expect("engine mutex poisoned");
                }
            } else {
                break;
            }
        }
        // optional batch window: hold for up to `deadline` or `max_batch`
        if !params.deadline.is_zero() {
            let window_end = Instant::now() + params.deadline;
            while guard.queue.len() < params.max_batch && !guard.shutdown && !guard.paused {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                #[allow(
                    clippy::expect_used,
                    reason = "condvar wait fails only on a poisoned mutex"
                )]
                let (g, timeout) = shard
                    .wake
                    .wait_timeout(guard, window_end - now)
                    .expect("engine mutex poisoned");
                guard = g;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        if guard.paused && !guard.shutdown {
            continue; // drop the guard, go back to waiting
        }
        let depth = guard.queue.len();
        let take = depth.min(params.max_batch);
        scratch.batch.clear();
        for _ in 0..take {
            #[allow(
                clippy::expect_used,
                reason = "take <= queue length under the lock just taken"
            )]
            scratch
                .batch
                .push(guard.queue.pop_front().expect("take <= len"));
        }
        drop(guard);

        // observe rollout transitions at the batch boundary: the shard
        // mutex above synchronizes-with every submit, and transitions
        // Release-store the epoch before returning — so a request
        // submitted after promote() returns is never served by the old
        // set. Re-cloning the Arc is a refcount bump, not an allocation.
        if shared.model_epoch.load(Ordering::Acquire) != models.epoch {
            models = shared.current_models();
        }

        run_batch(tel, shard_idx, &mut scratch, shared, &models, params, depth);
    }
}

#[allow(
    clippy::too_many_lines,
    reason = "the batch hot path stays one function so the borrow structure (disjoint scratch fields) is visible at once"
)]
fn run_batch(
    tel: &dyn Telemetry,
    shard_idx: usize,
    scratch: &mut ShardScratch,
    shared: &Shared,
    models: &ModelSet,
    params: &WorkerParams,
    depth: usize,
) {
    let n = scratch.batch.len();
    let span = if tel.enabled() {
        Some(Span::enter_with(
            tel,
            "serve/batch",
            vec![
                ("batch".to_string(), n.into()),
                ("queue_depth".to_string(), depth.into()),
                ("shard".to_string(), shard_idx.into()),
            ],
        ))
    } else {
        None
    };

    let inc = models.incumbent.as_ref();
    let tier = shared.tier;

    // ---- route each request: a pure function of its id, so the split is
    // identical for any shard count and batch composition
    scratch.route.clear();
    let (mut n_inc, mut n_can) = (0usize, 0usize);
    for req in &scratch.batch {
        let to_canary = models
            .canary
            .as_ref()
            .is_some_and(|slot| routes_to_canary(req.id, slot.fraction_permille));
        if to_canary {
            scratch.route.push(Route::Canary(n_can));
            n_can += 1;
        } else {
            scratch.route.push(Route::Incumbent(n_inc));
            n_inc += 1;
        }
    }

    // ---- incumbent sub-batch
    let inc_ok = if n_inc > 0 {
        let input =
            scratch.inputs[n_inc].get_or_insert_with(|| Matrix::zeros(n_inc, inc.net.input_dim()));
        for (req, route) in scratch.batch.iter().zip(&scratch.route) {
            if let Route::Incumbent(j) = route {
                input.row_mut(*j).copy_from_slice(&req.state);
            }
        }
        // the network asserts its own activations are finite and panics
        // otherwise; the slot catches that so one poisoned batch degrades
        // to the fallback expert instead of killing the shard worker
        scratch.caches[n_inc].forward(inc, tier, input)
    } else {
        true
    };

    // ---- canary sub-batch: candidate forward + incumbent shadow, then
    // ALL guards, before any canary reply leaves the shard
    let (mut can_ok, mut shadow_ok) = (true, true);
    let mut trip: Option<&'static str> = None;
    if n_can > 0 {
        #[allow(
            clippy::expect_used,
            reason = "requests route to the canary only when a slot is installed"
        )]
        let slot = models.canary.as_ref().expect("canary routed without slot");
        let can = slot.params.as_ref();
        let input = scratch.can_inputs[n_can]
            .get_or_insert_with(|| Matrix::zeros(n_can, can.net.input_dim()));
        for (req, route) in scratch.batch.iter().zip(&scratch.route) {
            if let Route::Canary(j) = route {
                input.row_mut(*j).copy_from_slice(&req.state);
            }
        }
        can_ok = scratch.can_caches[n_can].forward(can, tier, input);
        // shadow: the incumbent recomputes the very same staged rows with
        // the very same tier; in the Exact tier batched ≡ per-sample, so
        // the shadow is bit-identical to what the incumbent would have
        // served (fast tiers stay within their certified bound of it)
        shadow_ok = scratch.shadow_caches[n_can].forward(inc, tier, input);

        // guard pass over the whole canary sub-batch
        scratch.divs.clear();
        let mut nonfinite = 0u64;
        let mut env_rows = 0u64;
        let mut max_finite_div = 0.0_f64;
        for j in 0..n_can {
            let can_row = if can_ok {
                scratch.can_caches[n_can].output_row(tier, j)
            } else {
                None
            };
            let Some(can_row) = can_row else {
                nonfinite += 1;
                scratch.divs.push(f64::NAN);
                continue;
            };
            let shadow_row = if shadow_ok {
                scratch.shadow_caches[n_can].output_row(tier, j)
            } else {
                None
            };
            let mut row_finite = true;
            let mut row_escaped = false;
            let mut shadow_finite = shadow_row.is_some();
            let mut d = 0.0_f64;
            for (i, &y) in can_row.iter().enumerate() {
                let c = y * can.scale[i];
                if !c.is_finite() {
                    row_finite = false;
                }
                if c < can.u_inf[i] || c > can.u_sup[i] {
                    row_escaped = true;
                }
                let cc = c.clamp(can.u_inf[i], can.u_sup[i]);
                if let Some(shadow_row) = shadow_row {
                    let s = shadow_row[i] * inc.scale[i];
                    if s.is_finite() {
                        let sc = s.clamp(inc.u_inf[i], inc.u_sup[i]);
                        // NaN-proof: f64::max ignores a NaN |cc - sc|
                        d = d.max((cc - sc).abs());
                    } else {
                        shadow_finite = false;
                    }
                }
            }
            if !row_finite {
                nonfinite += 1;
                d = f64::NAN;
            } else {
                if row_escaped {
                    env_rows += 1;
                }
                if !shadow_finite {
                    d = f64::NAN; // incumbent broke, not the candidate
                } else {
                    max_finite_div = max_finite_div.max(d);
                }
            }
            scratch.divs.push(d);
        }

        // account + evaluate the budgets under the engine-wide log lock
        {
            let mut log = shared.lock_rollout();
            log.canary_shadowed += n_can as u64;
            log.nonfinite_canary_outputs += nonfinite;
            log.envelope_violations += env_rows;
            for d in &scratch.divs {
                log.divergence.record(*d);
            }
            if !can_ok || nonfinite > 0 {
                trip = Some("non-finite canary output");
            } else if max_finite_div > slot.budget.max_divergence {
                trip = Some("canary divergence budget exceeded");
            } else if log.envelope_violations > slot.budget.max_envelope_violations {
                trip = Some("canary envelope-violation budget exceeded");
            } else {
                log.canary_served += n_can as u64;
            }
        }
        if let Some(reason) = trip {
            shared.auto_rollback(models.epoch, reason);
        }
        tel.counter("serve.canary.requests", n_can as u64);
    }

    let can_params = models.canary.as_ref().map(|slot| slot.params.as_ref());

    // drift: one lock per batch, only when a detector is configured
    let mut drift_guard = if shared.drift_enabled {
        #[allow(
            clippy::expect_used,
            reason = "a poisoned drift mutex means a worker panic; propagating is correct"
        )]
        let guard = shared.drift.lock().expect("drift mutex poisoned");
        Some(guard)
    } else {
        None
    };
    let mut drift_hits: Vec<DriftReport> = Vec::new();

    // ---- reply pass, in original batch order
    let mut fallbacks = 0u64;
    for (r, req) in scratch.batch.drain(..).enumerate() {
        let (model, row): (&ModelParams, Option<&[f64]>) = match scratch.route[r] {
            Route::Incumbent(j) => {
                let row = if inc_ok {
                    scratch.caches[n_inc].output_row(tier, j)
                } else {
                    None
                };
                (inc, row)
            }
            Route::Canary(j) => {
                if trip.is_some() {
                    // a tripped batch is answered entirely from the
                    // incumbent's shadow outputs: zero candidate
                    // responses escape
                    let row = if shadow_ok {
                        scratch.shadow_caches[n_can].output_row(tier, j)
                    } else {
                        None
                    };
                    (inc, row)
                } else {
                    let row = if can_ok {
                        scratch.can_caches[n_can].output_row(tier, j)
                    } else {
                        None
                    };
                    (can_params.unwrap_or(inc), row)
                }
            }
        };
        // identical arithmetic to NnController::control followed by the
        // plant clip: y[i] * scale[i], then clamp — bit-for-bit what the
        // per-sample path produces
        let mut finite = row.is_some();
        if let Some(row) = row {
            for ((dst, y), sc) in scratch.scaled.iter_mut().zip(row).zip(&model.scale) {
                *dst = y * sc;
                finite &= dst.is_finite();
            }
        }
        let outcome: Result<(&[f64], bool), ServeError> = if finite {
            for ((v, lo), hi) in scratch
                .scaled
                .iter_mut()
                .zip(&model.u_inf)
                .zip(&model.u_sup)
            {
                // same clamp as cocktail_math::vector::clip
                *v = v.clamp(*lo, *hi);
            }
            Ok((scratch.scaled.as_slice(), false))
        } else if let Some(fb) = params.fallback.as_deref() {
            fallbacks += 1;
            let u = fb.control(&req.state);
            if u.iter().all(|v| v.is_finite()) {
                for (((dst, v), lo), hi) in scratch
                    .scaled
                    .iter_mut()
                    .zip(&u)
                    .zip(&model.u_inf)
                    .zip(&model.u_sup)
                {
                    *dst = v.clamp(*lo, *hi);
                }
                Ok((scratch.scaled.as_slice(), true))
            } else {
                Err(ServeError::NonFiniteOutput)
            }
        } else {
            Err(ServeError::NonFiniteOutput)
        };
        if let Some(det) = drift_guard.as_mut().and_then(|g| g.as_mut()) {
            if let Ok((control, _)) = &outcome {
                if let Some(report) = det.observe_row(control) {
                    drift_hits.push(report);
                }
            }
        }
        match req.reply {
            Reply::Channel(tx) => {
                let response = outcome.map(|(control, served_by_fallback)| ControlResponse {
                    control: control.to_vec(),
                    served_by_fallback,
                });
                // a dropped ticket (client gone) is not an engine error
                let _ = tx.send(response);
            }
            Reply::Outbox { outbox, id } => {
                let rec = match outcome {
                    Ok((control, fallback)) => ResponseRec::ok(id, control, fallback),
                    Err(e) => ResponseRec::err(id, wire::status_of_error(&e)),
                };
                outbox.push(rec);
            }
        }
        scratch.spent.push(req.state);
    }
    drop(drift_guard);

    // drift alarms: rare, off the per-request path
    for report in drift_hits {
        if tel.enabled() {
            tel.record(
                Event::point("serve.drift")
                    .with("dim", report.dim)
                    .with("distance", report.distance)
                    .with("threshold", report.threshold)
                    .with("epoch", models.epoch),
            );
        }
        tel.counter("serve.drift.alarms", 1);
        let mut log = shared.lock_rollout();
        log.events.push(RolloutEvent {
            epoch: models.epoch,
            action: RolloutAction::Drift,
            detail: format!(
                "served-output drift on dim {}: total-variation {:.4} > {:.4}",
                report.dim, report.distance, report.threshold
            ),
        });
        log.drift_reports.push(report);
    }

    tel.observe("serve.batch_size", n as f64);
    tel.observe("serve.queue_depth", depth as f64);
    tel.counter("serve.requests", n as u64);
    tel.counter("serve.fallbacks", fallbacks);
    if tel.enabled() {
        tel.record(Event::histogram("serve.shard.depth", depth as f64).with("shard", shard_idx));
        tel.record(Event::counter("serve.shard.batches", 1).with("shard", shard_idx));
        if fallbacks > 0 {
            tel.record(
                Event::point("serve.degradation")
                    .with("reason", "non-finite-output")
                    .with("shard", shard_idx)
                    .with("requests", fallbacks),
            );
        }
    }
    drop(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_control::LinearFeedbackController;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::InMemorySink;

    fn small_net() -> Mlp {
        MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(5)
            .build()
    }

    fn engine_with(config: EngineConfig) -> Engine {
        Engine::from_parts(
            small_net(),
            vec![2.0],
            vec![-5.0],
            vec![5.0],
            config,
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts")
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let engine = engine_with(EngineConfig::default());
        let resp = engine.handle().submit(&[0.3, -0.4]).expect("served");
        let expected = cocktail_math::vector::clip(
            &[small_net().forward(&[0.3, -0.4])[0] * 2.0],
            &[-5.0],
            &[5.0],
        );
        assert_eq!(resp.control, expected);
        assert!(!resp.served_by_fallback);
    }

    #[test]
    fn every_shard_serves_the_same_bits() {
        let per_sample = |s: &[f64]| {
            cocktail_math::vector::clip(&[small_net().forward(s)[0] * 2.0], &[-5.0], &[5.0])
        };
        for shards in [1usize, 2, 8] {
            let engine = engine_with(EngineConfig {
                shards,
                ..EngineConfig::default()
            });
            let h = engine.handle();
            assert_eq!(h.shard_count(), shards);
            for conn in 0..16u64 {
                let pinned = h.pinned(conn);
                assert!(pinned.shard() < shards);
                let s = [0.05 * conn as f64 - 0.3, 0.1];
                assert_eq!(
                    pinned.submit(&s).expect("served").control,
                    per_sample(&s),
                    "shard {} of {shards} must match the per-sample path",
                    pinned.shard()
                );
            }
        }
    }

    #[test]
    fn fast_tiers_serve_within_certified_bounds_across_shards() {
        assert_eq!(EngineConfig::default().tier, ServeTier::Exact);
        let net = MlpBuilder::new(2)
            .hidden(24, Activation::Tanh)
            .hidden(24, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(21)
            .build();
        let region = cocktail_math::BoxRegion::cube(2, -3.0, 3.0);
        let cert = cocktail_nn::certify_fast_tier(&net, &region).expect("tanh net certifies");
        let scale = 2.0_f64;
        for tier in [ServeTier::FastTanh, ServeTier::F32] {
            // the clip to the control envelope is 1-Lipschitz, so the
            // served control error is at most |scale| × the certified
            // network-output bound
            let bound = scale
                * match tier {
                    ServeTier::FastTanh => cert.fast_tanh_output_error[0],
                    _ => cert.f32_output_error[0],
                };
            for shards in [1usize, 2, 8] {
                let engine = Engine::from_parts(
                    net.clone(),
                    vec![scale],
                    vec![-5.0],
                    vec![5.0],
                    EngineConfig {
                        shards,
                        tier,
                        ..EngineConfig::default()
                    },
                    None,
                    Arc::new(NullSink),
                )
                .expect("engine starts");
                let h = engine.handle();
                let mut rng = cocktail_math::rng::seeded(0xfa57 + shards as u64);
                for i in 0..32u64 {
                    let s = cocktail_math::rng::uniform_in_box(&mut rng, &region);
                    let served = h.pinned(i).submit(&s).expect("served").control[0];
                    let oracle = (net.forward(&s)[0] * scale).clamp(-5.0, 5.0);
                    assert!(
                        (served - oracle).abs() <= bound,
                        "{tier:?} on {shards} shard(s): |{served} - {oracle}| > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_tier_refuses_unquantizable_activations() {
        let net = MlpBuilder::new(2)
            .hidden(4, Activation::Sigmoid)
            .output(1, Activation::Identity)
            .seed(2)
            .build();
        let err = Engine::from_parts(
            net.clone(),
            vec![1.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig {
                tier: ServeTier::F32,
                ..EngineConfig::default()
            },
            None,
            Arc::new(NullSink),
        )
        .err();
        assert!(matches!(err, Some(ServeError::BadRequest(_))), "{err:?}");

        // a running f32 engine likewise refuses an unquantizable canary
        let engine = Engine::from_parts(
            small_net(),
            vec![2.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig {
                tier: ServeTier::F32,
                ..EngineConfig::default()
            },
            None,
            Arc::new(NullSink),
        )
        .expect("quantizable incumbent starts");
        let err = engine
            .propose_parts(
                net,
                vec![1.0],
                vec![-5.0],
                vec![5.0],
                &RolloutConfig::default(),
            )
            .expect_err("sigmoid canary refused");
        assert!(matches!(err, RolloutError::Incompatible(_)), "{err}");
    }

    #[test]
    fn pinning_is_deterministic_and_spread() {
        let engine = engine_with(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let mut counts = [0usize; 4];
        for conn in 0..32u64 {
            let a = h.pinned(conn).shard();
            let b = h.pinned(conn).shard();
            assert_eq!(a, b, "same connection id, same shard");
            counts[a] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "sequential connection ids must touch every shard: {counts:?}"
        );
    }

    #[test]
    fn rejects_malformed_requests_immediately() {
        let engine = engine_with(EngineConfig::default());
        let h = engine.handle();
        assert!(matches!(h.submit(&[1.0]), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            h.submit(&[f64::NAN, 0.0]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn paused_engine_rejects_above_capacity_deterministically() {
        let engine = engine_with(EngineConfig {
            queue_capacity: 3,
            start_paused: true,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| h.try_submit(&[0.1 * f64::from(i), 0.0]).expect("queued"))
            .collect();
        for _ in 0..5 {
            assert_eq!(
                h.try_submit(&[0.9, 0.9]).err(),
                Some(ServeError::Backpressure { depth: 3 })
            );
        }
        engine.resume();
        for t in tickets {
            assert!(t.wait().expect("served after resume").control[0].is_finite());
        }
    }

    #[test]
    fn outbox_replies_carry_the_same_bits_as_tickets() {
        let engine = engine_with(EngineConfig::default());
        let h = engine.handle();
        let pinned = h.pinned(3);
        let outbox = Arc::new(Outbox::new());
        let state = [0.2, -0.6];
        let via_ticket = h.submit(&state).expect("served");
        pinned
            .try_submit_outbox(41, &state, &outbox)
            .expect("queued");
        assert!(outbox.wait_nonempty(Duration::from_secs(5)));
        let mut recs = Vec::new();
        assert_eq!(outbox.drain_into(&mut recs), 1);
        assert_eq!(recs[0].id, 41);
        assert!(recs[0].is_ok());
        assert_eq!(recs[0].control(), via_ticket.control.as_slice());
    }

    #[test]
    fn fallback_answers_non_finite_outputs() {
        // identity-activation net with an overflowing weight: finite
        // parameters, non-finite output at a large input — exactly the
        // case admission cannot rule out and the runtime guard must catch
        let net = MlpBuilder::new(2)
            .hidden(4, Activation::Identity)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        let mut net = net;
        for layer in net.layers_mut() {
            for v in layer.weights_mut().as_mut_slice() {
                *v = 1e300;
            }
        }
        let fallback = Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
            vec![1.0, 1.0],
        ])));
        let tel = Arc::new(InMemorySink::new());
        let engine = Engine::from_parts(
            net,
            vec![1.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig::default(),
            Some(fallback),
            tel.clone(),
        )
        .expect("engine starts");
        let resp = engine
            .handle()
            .submit(&[2.0, 2.0])
            .expect("fallback serves");
        assert!(resp.served_by_fallback);
        assert_eq!(resp.control, vec![-4.0]); // clip(-(2+2)) at [-5, 5]
        drop(engine);
        assert_eq!(tel.counter_total("serve.fallbacks"), 1);
        assert_eq!(tel.counter_total("serve.requests"), 1);
        assert_eq!(tel.counter_total("serve.shard.batches"), 1);
    }

    #[test]
    fn no_fallback_means_an_explicit_error() {
        // tanh layers would keep the output finite; identity ones overflow
        let mut net = MlpBuilder::new(2)
            .hidden(4, Activation::Identity)
            .output(1, Activation::Identity)
            .seed(1)
            .build();
        for layer in net.layers_mut() {
            for v in layer.weights_mut().as_mut_slice() {
                *v = 1e300;
            }
        }
        let engine = Engine::from_parts(
            net,
            vec![1.0],
            vec![-5.0],
            vec![5.0],
            EngineConfig::default(),
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        assert_eq!(
            engine.handle().submit(&[2.0, 2.0]).err(),
            Some(ServeError::NonFiniteOutput)
        );
    }

    #[test]
    fn shutdown_drains_queued_requests_on_every_shard() {
        let engine = engine_with(EngineConfig {
            start_paused: true,
            shards: 3,
            ..EngineConfig::default()
        });
        let h = engine.handle();
        let tickets: Vec<Ticket> = (0..12u32)
            .map(|i| {
                h.pinned(u64::from(i))
                    .try_submit(&[0.05 * f64::from(i), 0.1])
                    .expect("queued")
            })
            .collect();
        engine.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "queued work drains on shutdown");
        }
        assert_eq!(h.submit(&[0.0, 0.0]).err(), Some(ServeError::Shutdown));
    }

    #[test]
    fn promote_without_a_candidate_is_refused() {
        let engine = engine_with(EngineConfig::default());
        assert!(matches!(engine.promote(), Err(RolloutError::NoCandidate)));
        assert!(matches!(
            engine.rollback("operator"),
            Err(RolloutError::NoCandidate)
        ));
        assert_eq!(engine.model_epoch(), 1);
    }

    #[test]
    fn propose_rejects_incompatible_dimensions() {
        let engine = engine_with(EngineConfig::default());
        let wrong = MlpBuilder::new(3)
            .hidden(4, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(9)
            .build();
        let err = engine
            .propose_parts(
                wrong,
                vec![1.0],
                vec![-5.0],
                vec![5.0],
                &RolloutConfig::default(),
            )
            .expect_err("3-input candidate on a 2-input engine");
        assert!(matches!(err, RolloutError::Incompatible(_)), "{err}");
    }

    #[test]
    fn second_propose_requires_promote_or_rollback_first() {
        let engine = engine_with(EngineConfig::default());
        let candidate = || {
            MlpBuilder::new(2)
                .hidden(6, Activation::Tanh)
                .output(1, Activation::Identity)
                .seed(77)
                .build()
        };
        let cfg = RolloutConfig::default();
        let epoch = engine
            .propose_parts(candidate(), vec![2.0], vec![-5.0], vec![5.0], &cfg)
            .expect("first propose installs");
        assert_eq!(epoch, 2);
        let err = engine
            .propose_parts(candidate(), vec![2.0], vec![-5.0], vec![5.0], &cfg)
            .expect_err("second propose refused");
        assert!(matches!(err, RolloutError::CanaryInFlight), "{err}");
        assert_eq!(engine.rollback("operator").expect("rollback"), 3);
        let status = engine.rollout_status();
        assert!(!status.canary_active);
        assert_eq!(status.epoch, 3);
        let actions: Vec<RolloutAction> =
            engine.rollout_events().iter().map(|e| e.action).collect();
        assert_eq!(
            actions,
            vec![RolloutAction::Proposed, RolloutAction::RolledBack]
        );
    }
}
