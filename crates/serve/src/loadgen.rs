//! A deterministic load generator that is also a correctness oracle.
//!
//! States are drawn from the bundle's own input domain with a single
//! seeded RNG stream, so a given `(bundle, seed, requests)` triple always
//! produces the same request sequence. Every response is compared
//! bit-for-bit against [`expected_control`] — the per-sample reference
//! path (`forward`, scale, clip) the batching engine promises to match —
//! which turns any scheduler-induced numeric drift into a counted
//! `mismatch` instead of a silent perf artifact. The drill speaks either
//! wire protocol ([`WireProtocol`]) and reports tail latencies
//! (p50/p99/p999) alongside aggregate throughput.

use crate::bundle::{BundleError, ControllerBundle};
use crate::engine::{EngineHandle, ServeError};
use crate::transport::{BinaryTcpClient, ControlClient, TcpClient};
use cocktail_math::{rng, vector};
use std::net::SocketAddr;
use std::time::Instant;

/// Which frame format a TCP drill speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireProtocol {
    /// Length-prefixed JSON (the portable default).
    #[default]
    Json,
    /// The fixed-layout binary format in [`crate::wire`].
    Binary,
}

/// Load-drill shape.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent connections (threads); requests are dealt round-robin.
    pub connections: usize,
    /// Seed for the state stream.
    pub seed: u64,
    /// Frame format for TCP drills (in-process drills ignore it).
    pub wire: WireProtocol,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            requests: 512,
            connections: 4,
            seed: 0x10ad,
            wire: WireProtocol::Json,
        }
    }
}

/// What the drill observed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests refused with backpressure.
    pub rejected: usize,
    /// Responses answered by the fallback expert.
    pub fallbacks: usize,
    /// Responses that differed bitwise from the per-sample reference.
    pub mismatches: usize,
    /// Other errors (transport, bad request, shutdown).
    pub errors: usize,
    /// Times drill connections re-established a dropped connection
    /// (recoverable, so not part of [`LoadReport::is_clean`]).
    pub reconnects: u64,
    /// Median per-request latency in microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile per-request latency in microseconds.
    pub p99_latency_us: f64,
    /// 99.9th-percentile per-request latency in microseconds.
    pub p999_latency_us: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
}

impl LoadReport {
    /// A drill is clean when every request was answered by the primary
    /// network with the bit-exact reference output.
    pub fn is_clean(&self) -> bool {
        self.completed == self.sent
            && self.rejected == 0
            && self.fallbacks == 0
            && self.mismatches == 0
            && self.errors == 0
    }
}

/// The deterministic request stream for a bundle: `requests` states drawn
/// uniformly from the bundle's input domain.
pub fn generate_states(bundle: &ControllerBundle, requests: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut r = rng::seeded(seed);
    (0..requests)
        .map(|_| rng::uniform_in_box(&mut r, &bundle.input_domain))
        .collect()
}

/// The per-sample reference output the engine must reproduce bit-exactly:
/// `clip(scale ⊙ net.forward(state))`.
///
/// # Errors
///
/// [`BundleError`] when the bundle does not hold an `Mlp`-family spec.
pub fn expected_control(bundle: &ControllerBundle, state: &[f64]) -> Result<Vec<f64>, BundleError> {
    let (net, scale) = bundle.network()?;
    let raw = net.forward(state);
    let scaled: Vec<f64> = raw.iter().zip(scale).map(|(y, sc)| y * sc).collect();
    Ok(vector::clip(&scaled, &bundle.u_inf, &bundle.u_sup))
}

/// Runs the drill over TCP with one connection per thread, speaking the
/// configured wire protocol.
///
/// # Errors
///
/// [`BundleError`] when the bundle is not `Mlp`-family; individual
/// connect/request failures are counted in the report, not returned.
pub fn run_tcp(
    bundle: &ControllerBundle,
    addr: SocketAddr,
    cfg: &LoadGenConfig,
) -> Result<LoadReport, BundleError> {
    let wire = cfg.wire;
    run_with(
        bundle,
        cfg,
        |_| -> Result<Box<dyn ControlClient + Send>, ServeError> {
            match wire {
                WireProtocol::Json => TcpClient::connect(addr)
                    .map(|c| Box::new(c) as Box<dyn ControlClient + Send>)
                    .map_err(|e| ServeError::BadRequest(format!("connect: {e}"))),
                WireProtocol::Binary => BinaryTcpClient::connect(addr)
                    .map(|c| Box::new(c) as Box<dyn ControlClient + Send>)
                    .map_err(|e| ServeError::BadRequest(format!("connect: {e}"))),
            }
        },
    )
}

/// Runs the drill in-process against an engine handle (no sockets). Each
/// drill connection gets a shard-pinned handle, mirroring what the TCP
/// transports do per connection.
///
/// # Errors
///
/// [`BundleError`] when the bundle is not `Mlp`-family.
pub fn run_in_process(
    bundle: &ControllerBundle,
    handle: &EngineHandle,
    cfg: &LoadGenConfig,
) -> Result<LoadReport, BundleError> {
    run_with(bundle, cfg, |c| Ok(handle.pinned(c as u64)))
}

/// Runs the drill with caller-supplied clients — the generic core behind
/// [`run_tcp`] and [`run_in_process`], public so the perf harness can
/// drive custom client mixes.
///
/// # Errors
///
/// [`BundleError`] when the bundle is not `Mlp`-family.
pub fn run_with<C, F>(
    bundle: &ControllerBundle,
    cfg: &LoadGenConfig,
    make_client: F,
) -> Result<LoadReport, BundleError>
where
    C: ControlClient + Send,
    F: Fn(usize) -> Result<C, ServeError> + Sync,
{
    let states = generate_states(bundle, cfg.requests, cfg.seed);
    let expected: Vec<Vec<f64>> = states
        .iter()
        .map(|s| expected_control(bundle, s))
        .collect::<Result<_, _>>()?;
    let connections = cfg.connections.max(1);

    struct Tally {
        completed: usize,
        rejected: usize,
        fallbacks: usize,
        mismatches: usize,
        errors: usize,
        reconnects: u64,
        latencies_us: Vec<f64>,
    }

    let started = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let states = &states;
                let expected = &expected;
                let make_client = &make_client;
                scope.spawn(move || {
                    let mut tally = Tally {
                        completed: 0,
                        rejected: 0,
                        fallbacks: 0,
                        mismatches: 0,
                        errors: 0,
                        reconnects: 0,
                        latencies_us: Vec::new(),
                    };
                    let Ok(mut client) = make_client(c) else {
                        // count every request this connection owned as an
                        // error rather than silently shrinking the drill
                        tally.errors = (c..states.len()).step_by(connections).count();
                        return tally;
                    };
                    for i in (c..states.len()).step_by(connections) {
                        let t0 = Instant::now();
                        match client.control(&states[i]) {
                            Ok(resp) => {
                                tally.latencies_us.push(t0.elapsed().as_secs_f64() * 1.0e6);
                                tally.completed += 1;
                                if resp.served_by_fallback {
                                    tally.fallbacks += 1;
                                }
                                if resp.control != expected[i] {
                                    tally.mismatches += 1;
                                }
                            }
                            Err(ServeError::Backpressure { .. }) => tally.rejected += 1,
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally.reconnects = client.reconnects();
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(t) => t,
                Err(_) => Tally {
                    completed: 0,
                    rejected: 0,
                    fallbacks: 0,
                    mismatches: 0,
                    errors: 0,
                    reconnects: 0,
                    latencies_us: Vec::new(),
                },
            })
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_us.clone())
        .collect();
    latencies.sort_by(f64::total_cmp);
    let completed: usize = tallies.iter().map(|t| t.completed).sum();
    Ok(LoadReport {
        sent: states.len(),
        completed,
        rejected: tallies.iter().map(|t| t.rejected).sum(),
        fallbacks: tallies.iter().map(|t| t.fallbacks).sum(),
        mismatches: tallies.iter().map(|t| t.mismatches).sum(),
        errors: tallies.iter().map(|t| t.errors).sum(),
        reconnects: tallies.iter().map(|t| t.reconnects).sum(),
        p50_latency_us: percentile(&latencies, 0.50),
        p99_latency_us: percentile(&latencies, 0.99),
        p999_latency_us: percentile(&latencies, 0.999),
        #[allow(
            clippy::cast_precision_loss,
            reason = "request counts are far below 2^52"
        )]
        throughput_rps: if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        },
    })
}

/// Nearest-rank percentile over an ascending-sorted sample (0 when
/// empty): the smallest element with at least `⌈len·q⌉` samples at or
/// below it. `q` outside `[0, 1]` (or NaN) is clamped in.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        reason = "sample counts are far below 2^52 and q is in [0, 1]"
    )]
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_stream_is_deterministic_and_in_domain() {
        let bundle = crate::bundle::tests_support::healthy_bundle();
        let a = generate_states(&bundle, 64, 7);
        let b = generate_states(&bundle, 64, 7);
        let c = generate_states(&bundle, 64, 8);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different stream");
        for s in &a {
            for (v, iv) in s.iter().zip(bundle.input_domain.intervals()) {
                assert!(*v >= iv.lo() && *v <= iv.hi());
            }
        }
    }

    #[test]
    fn expected_control_respects_the_envelope() {
        let bundle = crate::bundle::tests_support::healthy_bundle();
        for s in generate_states(&bundle, 32, 3) {
            let u = expected_control(&bundle, &s).expect("mlp bundle");
            for ((v, lo), hi) in u.iter().zip(&bundle.u_inf).zip(&bundle.u_sup) {
                assert!(*v >= *lo && *v <= *hi);
            }
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 500.0);
        assert_eq!(percentile(&sorted, 0.99), 990.0);
        assert_eq!(percentile(&sorted, 0.999), 999.0);
        assert_eq!(percentile(&sorted, 1.0), 1000.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[42.0], 0.999), 42.0);
    }

    #[test]
    fn percentile_edge_cases_with_tiny_samples() {
        // N = 1: every quantile is the only sample
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile(&[7.0], q), 7.0, "q = {q}");
        }
        // N = 2: nearest rank splits exactly at the ceil boundary —
        // ⌈2·0.5⌉ = 1 (first sample), ⌈2·0.501⌉ = 2 (second)
        assert_eq!(percentile(&[1.0, 2.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.5), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.501), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.999), 2.0);
        // q = 0.999 with fewer than 1000 samples must hit the maximum:
        // ⌈N·0.999⌉ = N for every N < 1000
        for n in [2usize, 3, 10, 100, 999] {
            let sorted: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            assert_eq!(percentile(&sorted, 0.999), n as f64, "N = {n}");
        }
        // out-of-range and NaN quantiles clamp instead of panicking
        assert_eq!(percentile(&[1.0, 2.0, 3.0], -0.5), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 1.5), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], f64::NAN), 1.0);
    }
}
