//! The nonblocking serving reactor (Linux only).
//!
//! One thread multiplexes every connection over `epoll`: the listener,
//! a self-wake pipe, and all client sockets sit in one interest list,
//! and the loop reacts to readiness instead of parking a thread per
//! socket. Requests are fed to the engine's shard queues through
//! [`PinnedHandle::try_submit_outbox`], which never blocks; answers come
//! back through each connection's [`Outbox`], whose waker pokes the
//! reactor's wake pipe, so the loop never waits on the engine either.
//! Both wire protocols of [`crate::transport`] are spoken — the hello
//! byte (`0xC1`) selects the binary format, anything else is a framed
//! JSON length — and replies per connection stay in submission order
//! because every reply (including synchronous rejections) goes through
//! the connection's outbox.
//!
//! The epoll shim is a minimal `extern "C"` declaration of the three
//! syscall wrappers std already links from libc — no new dependency. On
//! non-Linux targets this module does not exist and callers fall back to
//! the threaded [`crate::transport::Server`].

use crate::engine::{EngineHandle, Outbox, PinnedHandle};
use crate::transport::MAX_FRAME_BYTES;
use crate::wire::{self, ResponseRec, WIRE_HELLO};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Abuse-hardening knobs for the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Close connections with no inbound bytes for this long (`None`:
    /// never). Swept at the event-loop tick granularity (~250 ms).
    pub idle_timeout: Option<Duration>,
    /// Close (with a malformed-frame reply) any connection whose buffered
    /// inbound bytes exceed this after frame processing — a frame larger
    /// than this can never complete, so holding more is pure abuse.
    pub max_buffered_bytes: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            idle_timeout: Some(Duration::from_secs(60)),
            max_buffered_bytes: MAX_FRAME_BYTES as usize + 4,
        }
    }
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2_000_000;

/// Matches the kernel's `struct epoll_event`; packed on x86-64, where the
/// kernel ABI has no padding between the two fields.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
}

struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error reported through errno
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. DEL ignores the event pointer on modern kernels but
        // passing a valid one is always correct.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &raw mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the buffer pointer and capacity describe a live slice
        // for the duration of the call
        let rc = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                #[allow(
                    clippy::cast_possible_truncation,
                    clippy::cast_possible_wrap,
                    reason = "event buffer is a small fixed size"
                )]
                {
                    events.len() as i32
                },
                timeout_ms,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        #[allow(clippy::cast_sign_loss, reason = "rc checked non-negative above")]
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd; wrapping transfers ownership to a File
        // whose drop closes it exactly once
        drop(unsafe { std::fs::File::from_raw_fd(self.fd) });
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_CONN_BASE: u64 = 2;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Pending,
    Json,
    Binary,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct JsonRequest {
    id: u64,
    state: Vec<f64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct JsonResponse {
    id: u64,
    control: Vec<f64>,
    fallback: bool,
    error: String,
}

struct Conn {
    stream: TcpStream,
    pinned: PinnedHandle,
    outbox: Arc<Outbox>,
    proto: Proto,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    want_write: bool,
    state_scratch: Vec<f64>,
    /// When inbound bytes last arrived; the idle sweep keys off this.
    last_activity: Instant,
    /// Set when a framing violation was answered with a status-coded
    /// goodbye: the connection closes once the goodbye is flushed and
    /// reads no further frames.
    closing: bool,
}

/// The reactor's JSON rendering of a wire status — compatible with the
/// error-string matching in [`crate::transport::TcpClient`].
fn json_error_of_status(status: u8) -> String {
    match status {
        wire::STATUS_OK | wire::STATUS_OK_FALLBACK => String::new(),
        wire::STATUS_BACKPRESSURE => "queue full; request rejected".to_string(),
        wire::STATUS_NON_FINITE => {
            "non-finite controller output and no fallback expert".to_string()
        }
        wire::STATUS_SHUTDOWN => "engine shut down".to_string(),
        _ => "bad request: refused by the server".to_string(),
    }
}

/// An epoll-backed serving endpoint: every connection, both wire
/// protocols, one event-loop thread.
pub struct ReactorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake_tx: Arc<UnixStream>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReactorServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the event loop with
    /// [`ReactorConfig::default`].
    ///
    /// # Errors
    ///
    /// Propagates bind, epoll-setup, and spawn failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, handle: EngineHandle) -> io::Result<Self> {
        Self::bind_with(addr, handle, ReactorConfig::default())
    }

    /// Binds with explicit hardening knobs.
    ///
    /// # Errors
    ///
    /// Propagates bind, epoll-setup, and spawn failures.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        handle: EngineHandle,
        config: ReactorConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let wake_tx = Arc::new(wake_tx);
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = stop.clone();
        let loop_wake = wake_tx.clone();
        let epoll = Epoll::new()?;
        epoll.ctl(EPOLL_CTL_ADD, listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.ctl(EPOLL_CTL_ADD, wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        let thread = std::thread::Builder::new()
            .name("cocktail-serve-reactor".into())
            .spawn(move || {
                reactor_loop(
                    &epoll, &listener, &wake_rx, &loop_wake, &handle, &loop_stop, &config,
                );
            })?;
        Ok(Self {
            addr,
            stop,
            wake_tx,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the event loop; open connections are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = (&*self.wake_tx).write(&[1]);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[allow(
    clippy::too_many_lines,
    reason = "the event loop reads best as one linear dispatch"
)]
fn reactor_loop(
    epoll: &Epoll,
    listener: &TcpListener,
    wake_rx: &UnixStream,
    wake_tx: &Arc<UnixStream>,
    handle: &EngineHandle,
    stop: &AtomicBool,
    config: &ReactorConfig,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let dirty: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut next_conn: u64 = 0;
    let mut events = [EpollEvent { events: 0, data: 0 }; 64];
    let mut chunk = [0u8; 16 * 1024];
    let mut recs: Vec<ResponseRec> = Vec::with_capacity(64);
    let mut dirty_tokens: Vec<u64> = Vec::new();
    let mut closed: Vec<u64> = Vec::new();

    loop {
        // a bounded timeout keeps the stop flag observable even if a wake
        // byte is ever lost
        let n = match epoll.wait(&mut events, 250) {
            Ok(n) => n,
            Err(_) => return,
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        for ev in &events[..n] {
            let token = ev.data;
            let bits = ev.events;
            match token {
                TOKEN_LISTENER => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err()
                                || stream.set_nodelay(true).is_err()
                            {
                                continue;
                            }
                            let conn_id = next_conn;
                            next_conn += 1;
                            let token = TOKEN_CONN_BASE + conn_id;
                            let waker_dirty = dirty.clone();
                            let waker_pipe = wake_tx.clone();
                            let outbox = Arc::new(Outbox::with_waker(move || {
                                if let Ok(mut d) = waker_dirty.lock() {
                                    d.push(token);
                                }
                                // a full pipe still wakes the reactor; the
                                // byte is a doorbell, not a message
                                let _ = (&*waker_pipe).write(&[1]);
                            }));
                            if epoll
                                .ctl(EPOLL_CTL_ADD, stream.as_raw_fd(), EPOLLIN, token)
                                .is_err()
                            {
                                continue;
                            }
                            conns.insert(
                                token,
                                Conn {
                                    stream,
                                    pinned: handle.pinned(conn_id),
                                    outbox,
                                    proto: Proto::Pending,
                                    rbuf: Vec::with_capacity(4096),
                                    wbuf: Vec::with_capacity(4096),
                                    wpos: 0,
                                    want_write: false,
                                    state_scratch: Vec::with_capacity(handle.state_dim()),
                                    last_activity: Instant::now(),
                                    closing: false,
                                },
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                },
                TOKEN_WAKE => {
                    // drain the doorbell, then service every dirty outbox
                    loop {
                        match (&*wake_rx).read(&mut chunk) {
                            Ok(0) => break,
                            Ok(_) => {}
                            Err(_) => break,
                        }
                    }
                    dirty_tokens.clear();
                    if let Ok(mut d) = dirty.lock() {
                        dirty_tokens.append(&mut d);
                    }
                    dirty_tokens.sort_unstable();
                    dirty_tokens.dedup();
                    for &t in &dirty_tokens {
                        if let Some(conn) = conns.get_mut(&t) {
                            let alive = drain_outbox(conn, &mut recs)
                                && flush(epoll, conn, t)
                                && !(conn.closing && conn.wbuf.is_empty());
                            if !alive {
                                closed.push(t);
                            }
                        }
                    }
                }
                _ => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut alive = bits & (EPOLLERR | EPOLLHUP) == 0;
                    if alive && bits & EPOLLIN != 0 {
                        alive = read_ready(conn, &mut chunk, config);
                        alive = alive && drain_outbox(conn, &mut recs);
                    }
                    if alive {
                        alive = flush(epoll, conn, token);
                    }
                    if alive && conn.closing && conn.wbuf.is_empty() {
                        alive = false; // goodbye flushed: close
                    }
                    if !alive {
                        closed.push(token);
                    }
                }
            }
        }
        if let Some(idle) = config.idle_timeout {
            let now = Instant::now();
            for (&t, conn) in &conns {
                if now.duration_since(conn.last_activity) > idle {
                    closed.push(t);
                }
            }
        }
        for token in closed.drain(..) {
            if let Some(conn) = conns.remove(&token) {
                let _ = epoll.ctl(EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, token);
            }
        }
    }
}

/// Appends a status-coded malformed-frame goodbye to the write buffer (in
/// the connection's own protocol) and flags the connection to close once
/// it is flushed. Frames already buffered are abandoned: a byte stream
/// cannot resynchronise after a framing violation.
fn refuse_malformed(conn: &mut Conn, detail: &str) {
    conn.closing = true;
    match conn.proto {
        Proto::Binary => wire::encode_response_into(
            &ResponseRec::err(0, wire::STATUS_MALFORMED_FRAME),
            &mut conn.wbuf,
        ),
        Proto::Json | Proto::Pending => {
            let resp = JsonResponse {
                id: 0,
                control: Vec::new(),
                fallback: false,
                error: format!("malformed frame: {detail}"),
            };
            if let Ok(encoded) = serde_json::to_string(&resp) {
                #[allow(
                    clippy::cast_possible_truncation,
                    reason = "an error response is far below 4 GiB"
                )]
                let len = (encoded.len() as u32).to_be_bytes();
                conn.wbuf.extend_from_slice(&len);
                conn.wbuf.extend_from_slice(encoded.as_bytes());
            }
        }
    }
}

/// Reads everything available and submits every complete frame. Returns
/// `false` when the connection must close.
fn read_ready(conn: &mut Conn, chunk: &mut [u8], config: &ReactorConfig) -> bool {
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => return false, // orderly hangup
            Ok(n) => {
                conn.last_activity = Instant::now();
                if !conn.closing {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                }
                // while closing, inbound bytes are read and discarded:
                // only the goodbye flush matters now
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.closing {
        return true;
    }
    if conn.proto == Proto::Pending && !conn.rbuf.is_empty() {
        if conn.rbuf[0] == WIRE_HELLO {
            conn.proto = Proto::Binary;
            conn.rbuf.copy_within(1.., 0);
            conn.rbuf.truncate(conn.rbuf.len() - 1);
        } else {
            conn.proto = Proto::Json;
        }
    }
    match conn.proto {
        Proto::Pending => {}
        Proto::Binary => process_binary(conn),
        Proto::Json => process_json(conn),
    }
    // whatever survived frame processing is a partial frame; one that
    // outgrew the cap can never complete within it
    if !conn.closing && conn.rbuf.len() > config.max_buffered_bytes {
        refuse_malformed(
            conn,
            &format!(
                "inbound buffer exceeds the {}-byte cap",
                config.max_buffered_bytes
            ),
        );
    }
    true
}

fn process_binary(conn: &mut Conn) {
    let mut consumed = 0usize;
    loop {
        match wire::decode_request(&conn.rbuf[consumed..], &mut conn.state_scratch) {
            Ok(Some((id, used))) => {
                consumed += used;
                if let Err(e) = conn
                    .pinned
                    .try_submit_outbox(id, &conn.state_scratch, &conn.outbox)
                {
                    // synchronous rejection: reply through the outbox so
                    // this connection's replies stay in submission order
                    conn.outbox
                        .push(ResponseRec::err(id, wire::status_of_error(&e)));
                }
            }
            Ok(None) => break,
            Err(e) => {
                // framing violation: status-coded goodbye, then close
                refuse_malformed(conn, &e.to_string());
                return;
            }
        }
    }
    if consumed > 0 {
        conn.rbuf.copy_within(consumed.., 0);
        conn.rbuf.truncate(conn.rbuf.len() - consumed);
    }
}

fn process_json(conn: &mut Conn) {
    let mut consumed = 0usize;
    loop {
        let rest = &conn.rbuf[consumed..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if len > MAX_FRAME_BYTES {
            refuse_malformed(
                conn,
                &format!("length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"),
            );
            return;
        }
        let total = 4 + len as usize;
        if rest.len() < total {
            break;
        }
        let body = &rest[4..total];
        let parsed = std::str::from_utf8(body)
            .ok()
            .and_then(|text| serde_json::from_str::<JsonRequest>(text).ok());
        match parsed {
            Some(req) => {
                if let Err(e) = conn
                    .pinned
                    .try_submit_outbox(req.id, &req.state, &conn.outbox)
                {
                    conn.outbox
                        .push(ResponseRec::err(req.id, wire::status_of_error(&e)));
                }
            }
            None => {
                // matches the threaded server: an unparseable frame gets
                // an id-0 error reply and the connection survives
                conn.outbox
                    .push(ResponseRec::err(0, wire::STATUS_BAD_REQUEST));
            }
        }
        consumed += total;
    }
    if consumed > 0 {
        conn.rbuf.copy_within(consumed.., 0);
        conn.rbuf.truncate(conn.rbuf.len() - consumed);
    }
}

/// Moves every queued outbox record into the connection's write buffer in
/// its wire protocol's encoding. Returns `false` on an encode failure.
fn drain_outbox(conn: &mut Conn, recs: &mut Vec<ResponseRec>) -> bool {
    recs.clear();
    if conn.outbox.drain_into(recs) == 0 {
        return true;
    }
    for rec in recs.iter() {
        match conn.proto {
            Proto::Binary => wire::encode_response_into(rec, &mut conn.wbuf),
            Proto::Json | Proto::Pending => {
                let resp = JsonResponse {
                    id: rec.id,
                    control: rec.control().to_vec(),
                    fallback: rec.status == wire::STATUS_OK_FALLBACK,
                    error: json_error_of_status(rec.status),
                };
                let Ok(encoded) = serde_json::to_string(&resp) else {
                    return false;
                };
                #[allow(
                    clippy::cast_possible_truncation,
                    reason = "a control response is far below 4 GiB"
                )]
                let len = (encoded.len() as u32).to_be_bytes();
                conn.wbuf.extend_from_slice(&len);
                conn.wbuf.extend_from_slice(encoded.as_bytes());
            }
        }
    }
    true
}

/// Writes as much of the pending buffer as the socket accepts, toggling
/// `EPOLLOUT` interest across partial writes. Returns `false` when the
/// connection must close.
fn flush(epoll: &Epoll, conn: &mut Conn, token: u64) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !conn.want_write {
                    conn.want_write = true;
                    return epoll
                        .ctl(
                            EPOLL_CTL_MOD,
                            conn.stream.as_raw_fd(),
                            EPOLLIN | EPOLLOUT,
                            token,
                        )
                        .is_ok();
                }
                return true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    if conn.want_write {
        conn.want_write = false;
        return epoll
            .ctl(EPOLL_CTL_MOD, conn.stream.as_raw_fd(), EPOLLIN, token)
            .is_ok();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::transport::{BinaryTcpClient, ControlClient, TcpClient};
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::NullSink;

    fn test_engine(shards: usize) -> Engine {
        let net = MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(11)
            .build();
        Engine::from_parts(
            net,
            vec![1.5],
            vec![-4.0],
            vec![4.0],
            EngineConfig {
                shards,
                ..EngineConfig::default()
            },
            None,
            std::sync::Arc::new(NullSink),
        )
        .expect("engine starts")
    }

    #[test]
    fn reactor_serves_both_protocols_bit_identically() {
        let engine = test_engine(2);
        let server = ReactorServer::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut json = TcpClient::connect(server.local_addr()).expect("connect");
        let mut binary = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        for i in 0..48 {
            let s = [f64::from(i) * 0.03 - 0.7, 0.2];
            let reference = engine.handle().submit(&s).expect("served");
            assert_eq!(json.control(&s).expect("served"), reference);
            assert_eq!(binary.control(&s).expect("served"), reference);
        }
        server.shutdown();
    }

    #[test]
    fn reactor_reports_errors_on_both_protocols() {
        let engine = test_engine(1);
        let server = ReactorServer::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut json = TcpClient::connect(server.local_addr()).expect("connect");
        let mut binary = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        for client in [&mut json as &mut dyn ControlClient, &mut binary] {
            let err = client.control(&[1.0, 2.0, 3.0]).expect_err("wrong dim");
            assert!(matches!(err, crate::engine::ServeError::BadRequest(_)));
            // the connection survives a refused request
            assert!(client.control(&[0.1, 0.1]).is_ok());
        }
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_swept() {
        let engine = test_engine(1);
        let server = ReactorServer::bind_with(
            "127.0.0.1:0",
            engine.handle(),
            ReactorConfig {
                idle_timeout: Some(Duration::from_millis(100)),
                ..ReactorConfig::default()
            },
        )
        .expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // never send a byte: the sweep must hang up on us
        let mut buf = [0u8; 1];
        let n = stream.read(&mut buf).expect("EOF, not a timeout");
        assert_eq!(n, 0, "idle connection swept");
        // the server still accepts and serves fresh traffic
        let mut client = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        assert!(client.control(&[0.1, 0.1]).is_ok());
        server.shutdown();
    }

    #[test]
    fn reactor_answers_malformed_binary_with_a_status_then_closes() {
        let engine = test_engine(1);
        let server = ReactorServer::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(&[WIRE_HELLO]).expect("hello");
        stream.write_all(&[0x7F; 18]).expect("garbage");
        let mut buf = Vec::new();
        let mut chunk = [0u8; 256];
        let mut rec = ResponseRec::err(0, wire::STATUS_OK);
        loop {
            match wire::decode_response(&buf, &mut rec).expect("client-side decode") {
                Some(_) => break,
                None => {
                    let n = stream.read(&mut chunk).expect("read reply");
                    assert!(n > 0, "server closed without a status reply");
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
        assert_eq!((rec.id, rec.status), (0, wire::STATUS_MALFORMED_FRAME));
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("drain to EOF");
        assert!(rest.is_empty(), "connection closes after the goodbye");
        // the reactor itself is unharmed
        let mut client = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        assert!(client.control(&[0.1, 0.1]).is_ok());
        server.shutdown();
    }

    #[test]
    fn over_cap_inbound_buffers_are_refused() {
        let engine = test_engine(1);
        let server = ReactorServer::bind_with(
            "127.0.0.1:0",
            engine.handle(),
            ReactorConfig {
                idle_timeout: None,
                max_buffered_bytes: 256,
            },
        )
        .expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // declare a (legal) 64 KiB JSON frame, then trickle a body that
        // overruns the configured buffer cap long before completing
        stream
            .write_all(&65536u32.to_be_bytes())
            .expect("length prefix");
        stream.write_all(&[b'x'; 1024]).expect("filler");
        stream.flush().expect("flush");
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf).expect("goodbye length");
        let mut body = vec![0u8; u32::from_be_bytes(len_buf) as usize];
        stream.read_exact(&mut body).expect("goodbye body");
        let text = std::str::from_utf8(&body).expect("UTF-8 goodbye");
        assert!(text.contains("malformed frame"), "got: {text}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("drain to EOF");
        assert!(rest.is_empty(), "connection closes after the goodbye");
        server.shutdown();
    }

    #[test]
    fn reactor_survives_many_connections() {
        let engine = test_engine(2);
        let server = ReactorServer::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut clients: Vec<BinaryTcpClient> = (0..16)
            .map(|_| BinaryTcpClient::connect(server.local_addr()).expect("connect"))
            .collect();
        for round in 0..4 {
            for (c, client) in clients.iter_mut().enumerate() {
                let s = [
                    f64::from(round) * 0.1,
                    f64::from(u32::try_from(c).unwrap()) * 0.01,
                ];
                let got = client.control(&s).expect("served");
                let want = engine.handle().submit(&s).expect("served");
                assert_eq!(got, want);
            }
        }
        drop(clients);
        server.shutdown();
    }
}
