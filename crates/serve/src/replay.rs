//! Offline shadow replay of recorded request streams.
//!
//! The engine captures every accepted request as a `serve.request`
//! telemetry point carrying the request id and the state vector as exact
//! **bit patterns** ([`encode_state_bits`] — hex-encoded `f64::to_bits`,
//! never decimal, so a JSONL round trip cannot perturb a single ULP).
//! `cocktail-serve replay` reads such a log back and feeds the recorded
//! stream through an incumbent and a candidate bundle *offline*, using
//! the same per-sample oracle arithmetic the engine is bit-identical to,
//! and emits the same divergence report a live canary would have — so a
//! rollout can be rehearsed against yesterday's traffic before a single
//! production request touches the candidate.

use crate::bundle::ControllerBundle;
use crate::rollout::{DivergenceHistogram, RolloutBudget};
use cocktail_obs::{read_jsonl, Event, FieldValue};
use std::fmt::Write as _;
use std::path::Path;

/// Encodes a state vector as comma-joined, zero-padded hex `f64` bit
/// patterns (`3fe0000000000000,bfd0...`). Lossless by construction.
#[must_use]
pub fn encode_state_bits(state: &[f64]) -> String {
    let mut s = String::with_capacity(state.len() * 17);
    for (i, v) in state.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{:016x}", v.to_bits());
    }
    s
}

/// Decodes [`encode_state_bits`] output back into the exact state vector.
/// Returns `None` on any malformed component.
#[must_use]
pub fn decode_state_bits(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|part| u64::from_str_radix(part, 16).ok().map(f64::from_bits))
        .collect()
}

/// One request recovered from a telemetry log.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedRequest {
    /// The id the canary split hashes ([`crate::rollout::routes_to_canary`]).
    pub id: u64,
    /// The exact state vector the engine saw.
    pub state: Vec<f64>,
}

/// Extracts every decodable `serve.request` capture from an event stream,
/// in recording order. Undecodable captures are skipped silently (count
/// them via `events.len()` against the result if needed).
#[must_use]
pub fn requests_of_events(events: &[Event]) -> Vec<RecordedRequest> {
    events
        .iter()
        .filter(|e| e.name == "serve.request")
        .filter_map(|e| {
            let id = match e.field("id") {
                Some(FieldValue::U64(id)) => *id,
                _ => return None,
            };
            let state = match e.field("state_bits") {
                Some(FieldValue::Str(bits)) => decode_state_bits(bits)?,
                _ => return None,
            };
            Some(RecordedRequest { id, state })
        })
        .collect()
}

/// Loads the recorded requests out of a telemetry JSONL file.
///
/// # Errors
///
/// Returns a message when the file cannot be read or parsed as JSONL.
pub fn load_recorded(path: &Path) -> Result<Vec<RecordedRequest>, String> {
    Ok(requests_of_events(&read_jsonl(path)?))
}

/// The offline equivalent of a live canary's shadow comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Requests replayed through both controllers.
    pub requests: u64,
    /// Requests skipped (state dimension mismatch).
    pub skipped: u64,
    /// Clipped-output divergence, candidate vs incumbent.
    pub divergence: DivergenceHistogram,
    /// Requests whose candidate output was non-finite.
    pub nonfinite_candidate: u64,
    /// Requests whose candidate pre-clip output left the candidate's
    /// control envelope.
    pub envelope_violations: u64,
}

impl ReplayReport {
    /// Whether a live canary with this `budget` would have survived the
    /// replayed stream (the non-finite guard has no budget: any
    /// occurrence fails).
    #[must_use]
    pub fn within(&self, budget: &RolloutBudget) -> bool {
        self.nonfinite_candidate == 0
            && self.envelope_violations <= budget.max_envelope_violations
            && self.divergence.max.partial_cmp(&budget.max_divergence)
                != Some(std::cmp::Ordering::Greater)
    }

    /// Multi-line human-readable rendering for the CLI.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "replayed {} requests ({} skipped)\n  divergence: {}\n  non-finite candidate \
             outputs: {}\n  envelope violations: {}",
            self.requests,
            self.skipped,
            self.divergence.render(),
            self.nonfinite_candidate,
            self.envelope_violations
        )
    }
}

/// Feeds `requests` through both bundles with the per-sample oracle the
/// engine is bit-identical to (`clip(scale ⊙ net.forward(state))`) and
/// reports the divergence a live canary at 100% traffic would have seen.
///
/// # Errors
///
/// Returns a message when either bundle's network cannot be materialized
/// or their dimensions disagree.
pub fn shadow_replay(
    incumbent: &ControllerBundle,
    candidate: &ControllerBundle,
    requests: &[RecordedRequest],
) -> Result<ReplayReport, String> {
    let (inc_net, inc_scale) = incumbent.network().map_err(|e| format!("incumbent: {e}"))?;
    let (can_net, can_scale) = candidate.network().map_err(|e| format!("candidate: {e}"))?;
    if inc_net.input_dim() != can_net.input_dim() || inc_net.output_dim() != can_net.output_dim() {
        return Err(format!(
            "dimension mismatch: incumbent {} -> {}, candidate {} -> {}",
            inc_net.input_dim(),
            inc_net.output_dim(),
            can_net.input_dim(),
            can_net.output_dim()
        ));
    }
    let mut report = ReplayReport {
        requests: 0,
        skipped: 0,
        divergence: DivergenceHistogram::default(),
        nonfinite_candidate: 0,
        envelope_violations: 0,
    };
    for req in requests {
        if req.state.len() != can_net.input_dim() {
            report.skipped += 1;
            continue;
        }
        report.requests += 1;
        let can_y = can_net.forward(&req.state);
        let inc_y = inc_net.forward(&req.state);
        let mut row_finite = true;
        let mut row_escaped = false;
        let mut d = 0.0_f64;
        for i in 0..can_y.len() {
            let c = can_y[i] * can_scale[i];
            if !c.is_finite() {
                row_finite = false;
            }
            if c < candidate.u_inf[i] || c > candidate.u_sup[i] {
                row_escaped = true;
            }
            let cc = c.clamp(candidate.u_inf[i], candidate.u_sup[i]);
            let s = inc_y[i] * inc_scale[i];
            if s.is_finite() {
                let sc = s.clamp(incumbent.u_inf[i], incumbent.u_sup[i]);
                d = d.max((cc - sc).abs());
            } else {
                d = f64::NAN;
            }
        }
        if !row_finite {
            report.nonfinite_candidate += 1;
            d = f64::NAN;
        } else if row_escaped {
            report.envelope_violations += 1;
        }
        report.divergence.record(d);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        reason = "test code; panics are failures"
    )]
    use super::*;
    use crate::bundle::tests_support::test_safety_params;
    use crate::bundle::{fnv1a_64, Provenance};
    use cocktail_core::SystemId;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::NullSink;

    fn bundle(seed: u64) -> ControllerBundle {
        let net = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(seed)
            .build();
        ControllerBundle::package_with(
            SystemId::Oscillator,
            net,
            vec![20.0],
            Provenance {
                seed,
                config_hash: fnv1a_64(b"replay-test"),
                crate_version: env!("CARGO_PKG_VERSION").to_string(),
            },
            Some(&test_safety_params()),
            &NullSink,
        )
        .expect("packages")
    }

    #[test]
    fn state_bits_round_trip_every_bit_pattern() {
        let awkward = [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1.234_567_890_123_456_7e-300,
        ];
        let encoded = encode_state_bits(&awkward);
        let decoded = decode_state_bits(&encoded).expect("decodes");
        for (a, b) in awkward.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "bitwise round trip");
        }
        assert_eq!(decode_state_bits(""), Some(Vec::new()));
        assert_eq!(decode_state_bits("zzz"), None);
    }

    #[test]
    fn recorded_requests_come_back_out_of_an_event_stream() {
        let events = vec![
            Event::point("serve.request")
                .with("id", 7u64)
                .with("state_bits", encode_state_bits(&[0.25, -0.5])),
            Event::point("serve.other").with("id", 9u64),
            Event::point("serve.request").with("id", 8u64), // no state: skipped
        ];
        let reqs = requests_of_events(&events);
        assert_eq!(
            reqs,
            vec![RecordedRequest {
                id: 7,
                state: vec![0.25, -0.5],
            }]
        );
    }

    #[test]
    fn identical_bundles_replay_with_zero_divergence() {
        let b = bundle(3);
        let requests: Vec<RecordedRequest> = (0..20u64)
            .map(|i| RecordedRequest {
                id: i,
                state: vec![0.05 * i as f64 - 0.4, 0.1],
            })
            .collect();
        let report = shadow_replay(&b, &bundle(3), &requests).expect("replays");
        assert_eq!(report.requests, 20);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.divergence.max, 0.0);
        assert_eq!(report.divergence.bins[0], 20, "all in the d == 0 bin");
        assert!(report.within(&RolloutBudget::default()));
        assert!(report.within(&RolloutBudget {
            max_divergence: 0.0,
            max_envelope_violations: 0,
        }));
    }

    #[test]
    fn different_bundles_diverge_and_budgets_catch_it() {
        let requests: Vec<RecordedRequest> = (0..20u64)
            .map(|i| RecordedRequest {
                id: i,
                state: vec![0.05 * i as f64 - 0.4, -0.2],
            })
            .collect();
        let report = shadow_replay(&bundle(3), &bundle(4), &requests).expect("replays");
        assert_eq!(report.requests, 20);
        assert!(report.divergence.max > 0.0, "different nets must diverge");
        assert!(!report.within(&RolloutBudget {
            max_divergence: 0.0,
            max_envelope_violations: u64::MAX,
        }));
        assert!(report.render().contains("replayed 20 requests"));
        // dimension-mismatched requests are skipped, not fatal
        let short = vec![RecordedRequest {
            id: 0,
            state: vec![1.0],
        }];
        let r2 = shadow_replay(&bundle(3), &bundle(4), &short).expect("replays");
        assert_eq!((r2.requests, r2.skipped), (0, 1));
    }
}
