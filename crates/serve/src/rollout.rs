//! Hot bundle rollout: canary gating, shadow comparison, and drift
//! detection.
//!
//! The engine loads one controller at process start; this module is the
//! machinery that lets it *change* controllers under load without ever
//! serving an unvetted output. The state machine is deliberately small:
//!
//! ```text
//!            propose (admission gate, off the hot path)
//!   Serving ────────────────────────────────────────────▶ Canarying
//!      ▲                                                     │
//!      │  promote (candidate becomes incumbent)              │
//!      ├─────────────────────────────────────────────────────┤
//!      │  rollback (manual, or automatic on a budget trip)   │
//!      └─────────────────────────────────────────────────────┘
//! ```
//!
//! While canarying, a deterministic fraction of traffic — chosen by
//! [`routes_to_canary`], a pure function of the request id, so replays
//! and shard counts cannot change the split — is answered by the
//! candidate. Every canary answer is *shadow-compared*: the incumbent
//! recomputes the same request and the clipped-output divergence is
//! recorded in a [`DivergenceHistogram`]. Three guards can trip an
//! automatic rollback, and all of them are evaluated **before any canary
//! reply leaves the shard**, so a tripped batch is answered entirely from
//! the incumbent's shadow outputs and zero candidate responses escape:
//!
//! 1. a non-finite candidate output (always fatal, no budget),
//! 2. per-request clipped divergence above [`RolloutBudget::max_divergence`],
//! 3. cumulative pre-clip envelope excursions above
//!    [`RolloutBudget::max_envelope_violations`].
//!
//! Independently, a [`DriftDetector`] histograms every *served* output
//! (whoever served it) against a frozen baseline window and raises
//! `serve.drift` when the total-variation distance crosses a threshold —
//! the serve-side signal that feeds the supervisor's retraining loop via
//! [`DriftReport::to_retrain_request`].

use crate::admission::AdmissionError;
use crate::bundle::fnv1a_64;
use cocktail_core::supervisor::RetrainRequest;
use std::fmt;

/// Denominator of the canary traffic split (fractions are per-mille).
pub const CANARY_SPLIT_DENOMINATOR: u64 = 1000;

/// Whether request `id` routes to the canary at a `fraction_permille`
/// split. A pure function of the id — independent of shard count, batch
/// composition, and arrival order — so a recorded stream replays onto
/// exactly the same split.
#[must_use]
pub fn routes_to_canary(id: u64, fraction_permille: u32) -> bool {
    fnv1a_64(&id.to_le_bytes()) % CANARY_SPLIT_DENOMINATOR
        < u64::from(fraction_permille).min(CANARY_SPLIT_DENOMINATOR)
}

/// Auto-rollback budget for a canary. The defaults disable the two
/// tunable guards; a non-finite candidate output always trips regardless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutBudget {
    /// Largest tolerated per-request divergence (max-abs difference of
    /// the clipped outputs, candidate vs incumbent). `INFINITY` disables
    /// the guard — a legitimately retrained candidate *should* diverge.
    pub max_divergence: f64,
    /// Largest tolerated cumulative count of canary requests whose
    /// pre-clip output left the bundle's control envelope. `u64::MAX`
    /// disables the guard.
    pub max_envelope_violations: u64,
}

impl Default for RolloutBudget {
    fn default() -> Self {
        Self {
            max_divergence: f64::INFINITY,
            max_envelope_violations: u64::MAX,
        }
    }
}

/// How a proposed candidate is canaried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RolloutConfig {
    /// Per-mille of traffic routed to the candidate while canarying
    /// (clamped to 1000). Default 100 (10%).
    pub fraction_permille: u32,
    /// Auto-rollback budget.
    pub budget: RolloutBudget,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            fraction_permille: 100,
            budget: RolloutBudget::default(),
        }
    }
}

/// Why a rollout operation was refused.
#[derive(Debug)]
pub enum RolloutError {
    /// The candidate failed the admission gate.
    Refused(AdmissionError),
    /// The candidate's dimensions are incompatible with the running
    /// engine.
    Incompatible(String),
    /// A canary is already in flight; promote or roll it back first.
    CanaryInFlight,
    /// No canary is in flight to promote or roll back.
    NoCandidate,
}

impl fmt::Display for RolloutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutError::Refused(e) => write!(f, "candidate refused by admission: {e}"),
            RolloutError::Incompatible(msg) => write!(f, "candidate incompatible: {msg}"),
            RolloutError::CanaryInFlight => {
                write!(
                    f,
                    "a canary is already in flight; promote or rollback first"
                )
            }
            RolloutError::NoCandidate => write!(f, "no canary in flight"),
        }
    }
}

impl std::error::Error for RolloutError {}

/// What happened at an epoch transition (or a drift alarm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutAction {
    /// A candidate was installed as a canary.
    Proposed,
    /// The canary became the incumbent.
    Promoted,
    /// An operator restored the incumbent.
    RolledBack,
    /// A budget trip restored the incumbent.
    AutoRolledBack,
    /// The drift detector flagged the served-output distribution.
    Drift,
}

impl RolloutAction {
    /// Stable lowercase label used in telemetry fields.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RolloutAction::Proposed => "proposed",
            RolloutAction::Promoted => "promoted",
            RolloutAction::RolledBack => "rolled-back",
            RolloutAction::AutoRolledBack => "auto-rolled-back",
            RolloutAction::Drift => "drift",
        }
    }
}

/// One entry in the structured rollout trail. Also emitted as a
/// `serve.rollout` (or `serve.drift`) telemetry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutEvent {
    /// The model epoch *after* the transition (the epoch the alarm was
    /// observed at, for [`RolloutAction::Drift`]).
    pub epoch: u64,
    /// What happened.
    pub action: RolloutAction,
    /// Human-readable cause ("operator", the tripped guard, ...).
    pub detail: String,
}

/// Point-in-time rollout observability snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutStatus {
    /// Current model epoch (bumps on propose/promote/rollback).
    pub epoch: u64,
    /// Whether a canary is in flight.
    pub canary_active: bool,
    /// Traffic split of the active canary (0 when none).
    pub canary_fraction_permille: u32,
    /// Canary requests answered by the candidate.
    pub canary_served: u64,
    /// Canary requests shadow-compared against the incumbent (equals
    /// `canary_served` plus the rows of any tripped batches).
    pub canary_shadowed: u64,
    /// Non-finite candidate outputs observed.
    pub nonfinite_canary_outputs: u64,
    /// Canary requests whose pre-clip output left the control envelope.
    pub envelope_violations: u64,
    /// Divergence of clipped canary outputs vs the incumbent shadow.
    pub divergence: DivergenceHistogram,
}

/// Number of bins in a [`DivergenceHistogram`].
pub const DIVERGENCE_BINS: usize = 8;

/// Upper edges of the first `DIVERGENCE_BINS - 1` bins (`d <= edge`);
/// the last bin collects everything above `1.0` plus NaN comparisons.
pub const DIVERGENCE_BIN_EDGES: [f64; DIVERGENCE_BINS - 1] =
    [0.0, 1e-12, 1e-9, 1e-6, 1e-3, 1e-1, 1.0];

/// A fixed-bin log-scale histogram of per-request divergence (max-abs
/// difference of clipped outputs). `Copy` and allocation-free to record,
/// so shard workers can update it on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DivergenceHistogram {
    /// Counts per bin; bin 0 is exact bitwise agreement (`d == 0`).
    pub bins: [u64; DIVERGENCE_BINS],
    /// Total comparisons recorded.
    pub count: u64,
    /// Sum of recorded divergences (NaN poisons the sum, by design).
    pub sum: f64,
    /// Largest recorded divergence.
    pub max: f64,
}

impl DivergenceHistogram {
    /// Records one per-request divergence (`d >= 0`; NaN lands in the
    /// last bin).
    pub fn record(&mut self, d: f64) {
        let bin = DIVERGENCE_BIN_EDGES
            .iter()
            .position(|edge| d <= *edge)
            .unwrap_or(DIVERGENCE_BINS - 1);
        self.bins[bin] += 1;
        self.count += 1;
        self.sum += d;
        if d > self.max || d.is_nan() {
            self.max = d;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max || other.max.is_nan() {
            self.max = other.max;
        }
    }

    /// Mean recorded divergence (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(
            clippy::cast_precision_loss,
            reason = "comparison counts are far below 2^52"
        )]
        {
            self.sum / self.count as f64
        }
    }

    /// One-line rendering for CLI reports:
    /// `n=96 max=1.2e-9 mean=3.4e-11 bins[=0|<=1e-12|...|>1]=90/4/2/0/0/0/0/0`.
    #[must_use]
    pub fn render(&self) -> String {
        let counts: Vec<String> = self.bins.iter().map(u64::to_string).collect();
        format!(
            "n={} max={:.3e} mean={:.3e} bins[=0|<=1e-12|<=1e-9|<=1e-6|<=1e-3|<=0.1|<=1|>1]={}",
            self.count,
            self.max,
            self.mean(),
            counts.join("/")
        )
    }
}

/// Drift-detector knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Served outputs per comparison window (per engine, not per shard).
    pub window: usize,
    /// Histogram bins per control dimension (capped at
    /// [`MAX_DRIFT_BINS`]).
    pub bins: usize,
    /// Total-variation distance in `[0, 1]` above which a window raises
    /// drift.
    pub threshold: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 512,
            bins: 16,
            threshold: 0.25,
        }
    }
}

/// Most bins a drift histogram may use (keeps the detector's memory
/// fixed and small).
pub const MAX_DRIFT_BINS: usize = 64;

/// One drift alarm: a comparison window whose output distribution moved
/// too far from the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Control dimension with the largest distance.
    pub dim: usize,
    /// Total-variation distance of that dimension's window vs baseline.
    pub distance: f64,
    /// The configured threshold it crossed.
    pub threshold: f64,
    /// Window size in served outputs.
    pub window: usize,
}

impl DriftReport {
    /// Renders this alarm as the supervisor-side retraining demand
    /// ([`cocktail_core::supervisor::save_retrain_request`] persists it
    /// for the pipeline to pick up).
    #[must_use]
    pub fn to_retrain_request(&self, system: &str) -> RetrainRequest {
        RetrainRequest {
            system: system.to_string(),
            reason: format!(
                "served-output drift on control dim {}: total-variation {:.4} \
                 crossed threshold {:.4} over a {}-output window",
                self.dim, self.distance, self.threshold, self.window
            ),
            observed: self.distance,
            threshold: self.threshold,
            source: "cocktail-serve drift detector".to_string(),
        }
    }
}

/// Histograms served outputs per control dimension against a frozen
/// baseline. The first full window *becomes* the baseline; every
/// subsequent window is compared by total-variation distance.
///
/// The baseline survives promote/rollback on purpose: a promoted
/// controller that behaves differently from what the fleet was serving
/// *is* drift worth flagging. Re-baseline explicitly with
/// [`DriftDetector::rebaseline`] when the change is intentional.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    lo: Vec<f64>,
    hi: Vec<f64>,
    baseline: Vec<Vec<u64>>,
    baseline_full: bool,
    current: Vec<Vec<u64>>,
    filled: usize,
    alarms: u64,
}

impl DriftDetector {
    /// A detector over `control_dim = u_inf.len()` dimensions, binning
    /// each dimension's clip envelope `[u_inf[i], u_sup[i]]`.
    #[must_use]
    pub fn new(cfg: DriftConfig, u_inf: &[f64], u_sup: &[f64]) -> Self {
        let bins = cfg.bins.clamp(2, MAX_DRIFT_BINS);
        let cfg = DriftConfig {
            bins,
            window: cfg.window.max(2),
            ..cfg
        };
        Self {
            cfg,
            lo: u_inf.to_vec(),
            hi: u_sup.to_vec(),
            baseline: vec![vec![0; bins]; u_inf.len()],
            baseline_full: false,
            current: vec![vec![0; bins]; u_inf.len()],
            filled: 0,
            alarms: 0,
        }
    }

    fn bin_of(&self, dim: usize, v: f64) -> usize {
        let lo = self.lo[dim];
        let width = (self.hi[dim] - lo).max(f64::MIN_POSITIVE);
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss,
            reason = "clamped to [0, bins-1] before truncation"
        )]
        {
            (((v - lo) / width * self.cfg.bins as f64).clamp(0.0, (self.cfg.bins - 1) as f64))
                as usize
        }
    }

    /// Feeds one served (clipped) control row. Returns a report when the
    /// row completes a comparison window whose total-variation distance
    /// crosses the threshold; the window then resets either way.
    pub fn observe_row(&mut self, control: &[f64]) -> Option<DriftReport> {
        for (dim, v) in control.iter().enumerate() {
            if dim >= self.current.len() || !v.is_finite() {
                continue;
            }
            let bin = self.bin_of(dim, *v);
            self.current[dim][bin] += 1;
        }
        self.filled += 1;
        if self.filled < self.cfg.window {
            return None;
        }
        self.filled = 0;
        if !self.baseline_full {
            // the first full window freezes the baseline
            std::mem::swap(&mut self.baseline, &mut self.current);
            self.baseline_full = true;
            for h in &mut self.current {
                h.iter_mut().for_each(|c| *c = 0);
            }
            return None;
        }
        let mut worst: Option<DriftReport> = None;
        for dim in 0..self.current.len() {
            let d = total_variation(&self.baseline[dim], &self.current[dim]);
            if d > self.cfg.threshold && worst.as_ref().is_none_or(|w| d > w.distance) {
                worst = Some(DriftReport {
                    dim,
                    distance: d,
                    threshold: self.cfg.threshold,
                    window: self.cfg.window,
                });
            }
            self.current[dim].iter_mut().for_each(|c| *c = 0);
        }
        if worst.is_some() {
            self.alarms += 1;
        }
        worst
    }

    /// Drops the frozen baseline; the next full window becomes the new
    /// one. Call after an *intentional* behavior change (promote).
    pub fn rebaseline(&mut self) {
        self.baseline_full = false;
        self.filled = 0;
        for h in self.baseline.iter_mut().chain(self.current.iter_mut()) {
            h.iter_mut().for_each(|c| *c = 0);
        }
    }

    /// How many windows have raised drift so far.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.alarms
    }
}

/// Total-variation distance between two count histograms in `[0, 1]`
/// (0 when either is empty).
#[must_use]
pub fn total_variation(a: &[u64], b: &[u64]) -> f64 {
    let (na, nb): (u64, u64) = (a.iter().sum(), b.iter().sum());
    if na == 0 || nb == 0 {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        reason = "window counts are far below 2^52"
    )]
    let half_l1: f64 = a
        .iter()
        .zip(b)
        .map(|(ca, cb)| (*ca as f64 / na as f64 - *cb as f64 / nb as f64).abs())
        .sum();
    half_l1 / 2.0
}

/// The engine-internal rollout trail and canary counters (one per
/// engine, shared across shards behind a mutex; updates are a few adds
/// per batch, never per request).
#[derive(Debug, Default)]
pub(crate) struct RolloutLog {
    pub(crate) events: Vec<RolloutEvent>,
    pub(crate) canary_served: u64,
    pub(crate) canary_shadowed: u64,
    pub(crate) nonfinite_canary_outputs: u64,
    pub(crate) envelope_violations: u64,
    pub(crate) divergence: DivergenceHistogram,
    pub(crate) drift_reports: Vec<DriftReport>,
}

impl RolloutLog {
    /// Resets the per-canary counters (a new propose starts a fresh
    /// comparison; the event trail and drift reports persist).
    pub(crate) fn reset_canary_counters(&mut self) {
        self.canary_served = 0;
        self.canary_shadowed = 0;
        self.nonfinite_canary_outputs = 0;
        self.envelope_violations = 0;
        self.divergence = DivergenceHistogram::default();
    }
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        reason = "test code; panics are failures"
    )]
    use super::*;

    #[test]
    fn canary_routing_is_a_pure_function_of_the_id() {
        let hits: Vec<u64> = (0..1000u64)
            .filter(|id| routes_to_canary(*id, 250))
            .collect();
        let again: Vec<u64> = (0..1000u64)
            .filter(|id| routes_to_canary(*id, 250))
            .collect();
        assert_eq!(hits, again, "routing must be deterministic");
        // a permille split over FNV-1a lands near the nominal fraction
        assert!(
            hits.len() > 150 && hits.len() < 350,
            "250 permille of 1000 sequential ids routed {} to canary",
            hits.len()
        );
        // monotone in the fraction: a wider split is a superset
        for id in 0..1000u64 {
            if routes_to_canary(id, 250) {
                assert!(routes_to_canary(id, 900));
            }
        }
        assert!((0..100u64).all(|id| !routes_to_canary(id, 0)));
        assert!((0..100u64).all(|id| routes_to_canary(id, 1000)));
    }

    #[test]
    fn divergence_histogram_bins_by_magnitude() {
        let mut h = DivergenceHistogram::default();
        h.record(0.0);
        h.record(1e-13);
        h.record(1e-10);
        h.record(1e-7);
        h.record(1e-4);
        h.record(1e-2);
        h.record(0.5);
        h.record(7.0);
        assert_eq!(h.bins, [1, 1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(h.count, 8);
        assert_eq!(h.max, 7.0);
        let mut other = DivergenceHistogram::default();
        other.record(f64::NAN);
        assert_eq!(other.bins[DIVERGENCE_BINS - 1], 1, "NaN lands in the tail");
        h.merge(&other);
        assert_eq!(h.count, 9);
        assert_eq!(h.bins[DIVERGENCE_BINS - 1], 2);
        assert!(h.render().starts_with("n=9 "));
    }

    #[test]
    fn total_variation_is_zero_on_identical_and_one_on_disjoint() {
        assert_eq!(total_variation(&[10, 0], &[5, 0]), 0.0);
        assert_eq!(total_variation(&[10, 0], &[0, 7]), 1.0);
        assert_eq!(total_variation(&[], &[]), 0.0);
        let half = total_variation(&[8, 8], &[16, 0]);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drift_detector_freezes_a_baseline_then_flags_a_shift() {
        let cfg = DriftConfig {
            window: 8,
            bins: 4,
            threshold: 0.5,
        };
        let mut det = DriftDetector::new(cfg, &[-1.0], &[1.0]);
        // window 1: all mass near -1 — becomes the baseline, no alarm
        for _ in 0..8 {
            assert!(det.observe_row(&[-0.9]).is_none());
        }
        // window 2: same distribution — no alarm
        for _ in 0..8 {
            assert!(det.observe_row(&[-0.9]).is_none());
        }
        // window 3: all mass near +1 — total variation 1.0, alarm
        let mut alarm = None;
        for _ in 0..8 {
            if let Some(r) = det.observe_row(&[0.9]) {
                alarm = Some(r);
            }
        }
        let report = alarm.expect("shifted window raises drift");
        assert_eq!(report.dim, 0);
        assert!(report.distance > 0.99);
        assert_eq!(det.alarms(), 1);
        let req = report.to_retrain_request("oscillator");
        assert_eq!(req.system, "oscillator");
        assert!(req.reason.contains("drift"));
        // rebaseline: the next window freezes silently again
        det.rebaseline();
        for _ in 0..16 {
            assert!(det.observe_row(&[0.9]).is_none(), "rebaselined");
        }
    }
}
