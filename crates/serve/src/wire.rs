//! The compact binary wire format (wire v1).
//!
//! The JSON transport spends most of its per-request budget formatting and
//! parsing decimal floats. This module defines a fixed-layout
//! little-endian alternative that decodes into **reused buffers** — the
//! steady-state serving path performs zero heap allocations per frame.
//!
//! A connection opts in by sending a single [`WIRE_HELLO`] byte (`0xC1`)
//! before its first frame. A JSON connection's first byte is the high
//! byte of a big-endian `u32` frame length capped at 1 MiB, which is
//! always `0x00`, so the hello byte is unambiguous and the two protocols
//! share one listening port.
//!
//! Frame layouts (all integers little-endian, all floats IEEE-754 `f64`
//! little-endian bit patterns — bit-exact round trips by construction):
//!
//! ```text
//! request:  0x01 | id: u64 | dim: u8 | state: dim × f64
//! response: 0x02 | id: u64 | status: u8 | dim: u8 | control: dim × f64
//! ```
//!
//! `status` 0 is success, 1 is success-served-by-fallback; anything else
//! is a [`ServeError`] code and carries `dim = 0`. Dimensions are capped
//! ([`MAX_WIRE_STATE_DIM`], [`MAX_WIRE_CONTROL_DIM`]) so a frame header
//! can never request an unbounded read and response records stay
//! fixed-size (inline arrays, no allocation).

use crate::engine::ServeError;

/// Protocol-negotiation byte a binary client sends once after connecting.
pub const WIRE_HELLO: u8 = 0xC1;

/// Frame tag of a control request.
pub const TAG_REQUEST: u8 = 0x01;

/// Frame tag of a control response.
pub const TAG_RESPONSE: u8 = 0x02;

/// Largest state dimension a binary request may carry.
pub const MAX_WIRE_STATE_DIM: usize = 64;

/// Largest control dimension a binary response may carry. Response
/// records embed the control vector inline at this arity so the reply
/// path never allocates.
pub const MAX_WIRE_CONTROL_DIM: usize = 8;

/// `status`: the request was served by the primary network.
pub const STATUS_OK: u8 = 0;
/// `status`: the request was served by the fallback expert.
pub const STATUS_OK_FALLBACK: u8 = 1;
/// `status`: rejected, the shard queue was full.
pub const STATUS_BACKPRESSURE: u8 = 2;
/// `status`: the request was malformed.
pub const STATUS_BAD_REQUEST: u8 = 3;
/// `status`: non-finite output and no fallback expert.
pub const STATUS_NON_FINITE: u8 = 4;
/// `status`: the engine shut down before answering.
pub const STATUS_SHUTDOWN: u8 = 5;
/// `status`: the connection sent an unparseable frame (bad tag, over-limit
/// dimension, oversized length prefix). Servers answer with this code and
/// then close — byte streams cannot resynchronise after a malformed fixed
/// frame — so the client learns *why* instead of seeing a bare hangup.
pub const STATUS_MALFORMED_FRAME: u8 = 6;

const REQUEST_HEADER: usize = 1 + 8 + 1;
const RESPONSE_HEADER: usize = 1 + 8 + 1 + 1;

/// A framing violation; the connection that produced it must be closed
/// (byte streams cannot resynchronise after a malformed fixed frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire frame: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// One answered request in fixed-size form — what shard workers push onto
/// a reply [`crate::engine::Outbox`]. `Copy` and inline-array backed, so
/// queueing one reuses ring capacity instead of allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseRec {
    /// Echo of the request id.
    pub id: u64,
    /// One of the `STATUS_*` codes.
    pub status: u8,
    /// Arity of the control payload (0 for errors).
    pub dim: u8,
    /// The clipped control vector, in `control[..dim]`.
    pub control: [f64; MAX_WIRE_CONTROL_DIM],
}

impl ResponseRec {
    /// A success record.
    ///
    /// # Panics
    ///
    /// Panics if `control.len() > MAX_WIRE_CONTROL_DIM`; the engine
    /// rejects outbox submissions for wider controllers up front.
    #[must_use]
    pub fn ok(id: u64, control: &[f64], fallback: bool) -> Self {
        assert!(control.len() <= MAX_WIRE_CONTROL_DIM);
        let mut rec = Self {
            id,
            status: if fallback {
                STATUS_OK_FALLBACK
            } else {
                STATUS_OK
            },
            #[allow(
                clippy::cast_possible_truncation,
                reason = "dim is asserted <= MAX_WIRE_CONTROL_DIM (8)"
            )]
            dim: control.len() as u8,
            control: [0.0; MAX_WIRE_CONTROL_DIM],
        };
        rec.control[..control.len()].copy_from_slice(control);
        rec
    }

    /// An error record for the given status code.
    #[must_use]
    pub fn err(id: u64, status: u8) -> Self {
        Self {
            id,
            status,
            dim: 0,
            control: [0.0; MAX_WIRE_CONTROL_DIM],
        }
    }

    /// The control payload slice.
    #[must_use]
    pub fn control(&self) -> &[f64] {
        &self.control[..usize::from(self.dim)]
    }

    /// Whether the record is a success (primary or fallback).
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == STATUS_OK || self.status == STATUS_OK_FALLBACK
    }
}

/// The status code a failed submission maps to.
#[must_use]
pub fn status_of_error(error: &ServeError) -> u8 {
    match error {
        ServeError::Backpressure { .. } => STATUS_BACKPRESSURE,
        ServeError::BadRequest(_) => STATUS_BAD_REQUEST,
        ServeError::NonFiniteOutput => STATUS_NON_FINITE,
        ServeError::Shutdown => STATUS_SHUTDOWN,
    }
}

/// The [`ServeError`] a non-success status decodes to (`None` for the two
/// success statuses). Backpressure depth does not travel over the wire,
/// matching the JSON client.
#[must_use]
pub fn error_of_status(status: u8) -> Option<ServeError> {
    match status {
        STATUS_OK | STATUS_OK_FALLBACK => None,
        STATUS_BACKPRESSURE => Some(ServeError::Backpressure { depth: 0 }),
        STATUS_NON_FINITE => Some(ServeError::NonFiniteOutput),
        STATUS_SHUTDOWN => Some(ServeError::Shutdown),
        STATUS_BAD_REQUEST => Some(ServeError::BadRequest(
            "request refused by the server".to_string(),
        )),
        STATUS_MALFORMED_FRAME => Some(ServeError::BadRequest(
            "server reported a malformed frame and closed the connection".to_string(),
        )),
        other => Some(ServeError::BadRequest(format!(
            "unknown wire status {other}"
        ))),
    }
}

/// Appends an encoded request frame to `out` (capacity is reused across
/// calls — clear `out` yourself if you want exactly one frame in it).
///
/// # Panics
///
/// Panics if `state.len() > MAX_WIRE_STATE_DIM`.
pub fn encode_request_into(id: u64, state: &[f64], out: &mut Vec<u8>) {
    assert!(state.len() <= MAX_WIRE_STATE_DIM, "state too wide for wire");
    out.push(TAG_REQUEST);
    out.extend_from_slice(&id.to_le_bytes());
    #[allow(
        clippy::cast_possible_truncation,
        reason = "dim is asserted <= MAX_WIRE_STATE_DIM (64)"
    )]
    out.push(state.len() as u8);
    for v in state {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends an encoded response frame to `out`.
pub fn encode_response_into(rec: &ResponseRec, out: &mut Vec<u8>) {
    out.push(TAG_RESPONSE);
    out.extend_from_slice(&rec.id.to_le_bytes());
    out.push(rec.status);
    out.push(rec.dim);
    for v in rec.control() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_u64_le(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

fn read_f64_le(buf: &[u8], at: usize) -> f64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    f64::from_le_bytes(b)
}

/// Decodes one request frame from the front of `buf` into the reused
/// `state` buffer (cleared, then filled — no allocation once its capacity
/// has grown to the state arity).
///
/// Returns `Ok(None)` when `buf` holds only a partial frame, and
/// `Ok(Some((id, consumed_bytes)))` on success.
///
/// # Errors
///
/// [`WireError`] on a wrong tag or an over-limit dimension; the caller
/// must drop the connection.
pub fn decode_request(buf: &[u8], state: &mut Vec<f64>) -> Result<Option<(u64, usize)>, WireError> {
    if buf.len() < REQUEST_HEADER {
        return Ok(None);
    }
    if buf[0] != TAG_REQUEST {
        return Err(WireError("expected request tag"));
    }
    let dim = usize::from(buf[9]);
    if dim > MAX_WIRE_STATE_DIM {
        return Err(WireError("state dimension over wire limit"));
    }
    let total = REQUEST_HEADER + 8 * dim;
    if buf.len() < total {
        return Ok(None);
    }
    let id = read_u64_le(buf, 1);
    state.clear();
    for i in 0..dim {
        state.push(read_f64_le(buf, REQUEST_HEADER + 8 * i));
    }
    Ok(Some((id, total)))
}

/// Decodes one response frame from the front of `buf` into `rec`.
///
/// Returns `Ok(None)` for a partial frame, `Ok(Some(consumed_bytes))` on
/// success.
///
/// # Errors
///
/// [`WireError`] on a wrong tag or an over-limit dimension.
pub fn decode_response(buf: &[u8], rec: &mut ResponseRec) -> Result<Option<usize>, WireError> {
    if buf.len() < RESPONSE_HEADER {
        return Ok(None);
    }
    if buf[0] != TAG_RESPONSE {
        return Err(WireError("expected response tag"));
    }
    let dim = usize::from(buf[10]);
    if dim > MAX_WIRE_CONTROL_DIM {
        return Err(WireError("control dimension over wire limit"));
    }
    let total = RESPONSE_HEADER + 8 * dim;
    if buf.len() < total {
        return Ok(None);
    }
    rec.id = read_u64_le(buf, 1);
    rec.status = buf[9];
    #[allow(
        clippy::cast_possible_truncation,
        reason = "dim was read from a u8 and bounds-checked above"
    )]
    {
        rec.dim = dim as u8;
    }
    for i in 0..dim {
        rec.control[i] = read_f64_le(buf, RESPONSE_HEADER + 8 * i);
    }
    Ok(Some(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_bit_exactly() {
        let state = [0.25, -3.5e-11, f64::MIN_POSITIVE, 1.0 / 3.0];
        let mut frame = Vec::new();
        encode_request_into(77, &state, &mut frame);
        let mut decoded = Vec::new();
        let (id, used) = decode_request(&frame, &mut decoded)
            .expect("valid frame")
            .expect("complete frame");
        assert_eq!(id, 77);
        assert_eq!(used, frame.len());
        assert_eq!(decoded, state, "f64 bit patterns survive the wire");
    }

    #[test]
    fn response_round_trips_and_reports_status() {
        let rec = ResponseRec::ok(9, &[1.5, -2.25], true);
        let mut frame = Vec::new();
        encode_response_into(&rec, &mut frame);
        let mut got = ResponseRec::err(0, STATUS_SHUTDOWN);
        let used = decode_response(&frame, &mut got)
            .expect("valid frame")
            .expect("complete frame");
        assert_eq!(used, frame.len());
        assert_eq!(got, rec);
        assert!(got.is_ok());
        assert_eq!(got.control(), &[1.5, -2.25]);

        let err = ResponseRec::err(10, STATUS_BACKPRESSURE);
        let mut frame = Vec::new();
        encode_response_into(&err, &mut frame);
        let mut got = ResponseRec::err(0, STATUS_OK);
        decode_response(&frame, &mut got)
            .expect("valid")
            .expect("complete");
        assert!(!got.is_ok());
        assert!(matches!(
            error_of_status(got.status),
            Some(ServeError::Backpressure { .. })
        ));
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let mut frame = Vec::new();
        encode_request_into(1, &[0.5, 0.25], &mut frame);
        let mut state = Vec::new();
        for cut in 0..frame.len() {
            assert_eq!(
                decode_request(&frame[..cut], &mut state).expect("prefix is not malformed"),
                None,
                "prefix of {cut} bytes must be recognised as partial"
            );
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        let mut state = Vec::new();
        // wrong tag
        let bad_tag = [0x7Fu8; 16];
        assert!(decode_request(&bad_tag, &mut state).is_err());
        // over-limit dimension
        let mut frame = Vec::new();
        encode_request_into(1, &[0.0], &mut frame);
        frame[9] = 200;
        assert!(decode_request(&frame, &mut state).is_err());
        let mut rec = ResponseRec::err(0, STATUS_OK);
        let mut resp = Vec::new();
        encode_response_into(&ResponseRec::ok(1, &[0.0], false), &mut resp);
        resp[10] = 99;
        assert!(decode_response(&resp, &mut rec).is_err());
    }

    #[test]
    fn decode_reuses_the_state_buffer() {
        let mut frame = Vec::new();
        encode_request_into(1, &[1.0, 2.0, 3.0], &mut frame);
        let mut state = Vec::with_capacity(8);
        let ptr_before = state.as_ptr();
        decode_request(&frame, &mut state)
            .expect("valid")
            .expect("complete");
        assert_eq!(state, vec![1.0, 2.0, 3.0]);
        assert_eq!(ptr_before, state.as_ptr(), "capacity was reused");
    }

    #[test]
    fn status_codes_map_to_serve_errors_and_back() {
        for e in [
            ServeError::Backpressure { depth: 3 },
            ServeError::BadRequest("x".into()),
            ServeError::NonFiniteOutput,
            ServeError::Shutdown,
        ] {
            let status = status_of_error(&e);
            let back = error_of_status(status).expect("errors stay errors");
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&e));
        }
        assert_eq!(error_of_status(STATUS_OK), None);
        assert_eq!(error_of_status(STATUS_OK_FALLBACK), None);
    }
}
