//! `cocktail-serve` — the controller-serving CLI.
//!
//! ```text
//! cocktail-serve check         --bundle student.bundle.json
//! cocktail-serve serve         --bundle student.bundle.json --addr 127.0.0.1:7501
//! cocktail-serve loadgen       --bundle student.bundle.json --addr 127.0.0.1:7501
//! cocktail-serve smoke         --bundle student.bundle.json --telemetry tel.jsonl
//! cocktail-serve replay        --telemetry tel.jsonl --incumbent v1.json --candidate v2.json
//! cocktail-serve rollout-drill --bundle student.bundle.json --telemetry tel.jsonl
//! ```
//!
//! `check` runs admission and prints the evidence; `serve` admits then
//! serves over TCP until killed; `loadgen` drives an already-running
//! server and verifies every response bit-for-bit; `smoke` does
//! admit + serve + loadgen in one process on an ephemeral port and exits
//! non-zero on any fallback, mismatch, rejection, or error — the CI entry
//! point. `replay` re-runs a recorded request stream (the `serve.request`
//! captures in a telemetry log) through an incumbent and a candidate
//! bundle offline and judges the divergence against a rollout budget.
//! `rollout-drill` is the end-to-end fleet-operations drill: serve v1,
//! refuse a tampered candidate, canary and promote a valid one, raise
//! drift on shifted traffic, and prove a corrupted candidate auto-rolls
//! back with zero escaped responses.
//!
//! Serving commands take `--shards N` (engine shards) and `--transport
//! reactor|threaded` (epoll reactor on Linux, thread-per-connection
//! anywhere; the default picks the reactor where it exists), plus
//! `--drift-window N` / `--drift-threshold X` to enable the served-output
//! drift detector and `--retrain-dir <dir>` to persist a retraining
//! demand when it fires. Drill commands take `--wire json|binary` to pick
//! the frame format.

use cocktail_core::supervisor::save_retrain_request;
use cocktail_obs::{JsonlSink, NullSink, Telemetry};
use cocktail_serve::loadgen::{self, LoadGenConfig, LoadReport, WireProtocol};
use cocktail_serve::{
    admit_with, load_recorded, shadow_replay, AdmissionConfig, BinaryTcpClient, ControlClient,
    ControllerBundle, DriftConfig, Engine, EngineConfig, EngineHandle, Provenance, RolloutAction,
    RolloutBudget, RolloutConfig, RolloutError, ServeTier, Server,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{}`", raw[i]))?;
            // a flag followed by another flag (or by nothing) is a bare
            // boolean switch, e.g. `--allow-uncertified`
            match raw.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    flags.push((key.to_string(), v.clone()));
                    i += 2;
                }
                _ => {
                    flags.push((key.to_string(), "true".to_string()));
                    i += 1;
                }
            }
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} got unparseable value `{v}`")),
        }
    }
}

fn usage() -> String {
    "usage: cocktail-serve <check|verify|serve|loadgen|smoke|replay|rollout-drill> [options]\n\
     \n\
     check         --bundle <path> [--allow-uncertified]\n\
     verify        --bundle <path> [--allow-uncertified]\n\
     serve         --bundle <path> --addr <ip:port> [--max-batch N] [--deadline-us N]\n\
                   [--capacity N] [--shards N] [--transport reactor|threaded]\n\
                   [--telemetry <jsonl>] [--drift-window N] [--drift-threshold X]\n\
                   [--retrain-dir <dir>]\n\
     loadgen       --bundle <path> --addr <ip:port> [--requests N] [--connections N]\n\
                   [--seed N] [--wire json|binary]\n\
     smoke         --bundle <path> [--requests N] [--connections N] [--seed N]\n\
                   [--wire json|binary] [--telemetry <jsonl>] [--max-batch N]\n\
                   [--deadline-us N] [--capacity N] [--shards N] [--tier exact|fast-tanh|f32]\n\
                   [--transport reactor|threaded]\n\
     replay       --telemetry <jsonl> --incumbent <path> --candidate <path>\n\
                   [--max-divergence X] [--max-envelope-violations N]\n\
     rollout-drill --bundle <path> [--telemetry <jsonl>] [--retrain-dir <dir>]\n\
                   [--shards N] [--transport reactor|threaded]"
        .to_string()
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let result = match Args::parse(&raw[1..]) {
        Err(e) => Err(e),
        Ok(args) => match command.as_str() {
            "check" => cmd_check(&args),
            "verify" => cmd_verify(&args),
            "serve" => cmd_serve(&args),
            "loadgen" => cmd_loadgen(&args),
            "smoke" => cmd_smoke(&args),
            "replay" => cmd_replay(&args),
            "rollout-drill" => cmd_rollout_drill(&args),
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        },
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cocktail-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_bundle(args: &Args) -> Result<ControllerBundle, String> {
    let path = PathBuf::from(args.required("bundle")?);
    ControllerBundle::load(&path).map_err(|e| e.to_string())
}

fn admission_config(args: &Args) -> Result<AdmissionConfig, String> {
    Ok(AdmissionConfig {
        allow_uncertified: args.parsed("allow-uncertified", false)?,
        ..AdmissionConfig::default()
    })
}

fn telemetry_of(args: &Args) -> Result<Arc<dyn Telemetry>, String> {
    match args.get("telemetry") {
        None => Ok(Arc::new(NullSink)),
        Some(path) => Ok(Arc::new(
            JsonlSink::create(Path::new(path)).map_err(|e| format!("telemetry sink: {e}"))?,
        )),
    }
}

fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    let defaults = EngineConfig::default();
    let drift_defaults = DriftConfig::default();
    let drift = if args.get("drift-window").is_some() || args.get("drift-threshold").is_some() {
        Some(DriftConfig {
            window: args.parsed("drift-window", drift_defaults.window)?,
            bins: drift_defaults.bins,
            threshold: args.parsed("drift-threshold", drift_defaults.threshold)?,
        })
    } else {
        None
    };
    let tier = match args.get("tier").unwrap_or("exact") {
        "exact" => ServeTier::Exact,
        "fast-tanh" => ServeTier::FastTanh,
        "f32" => ServeTier::F32,
        other => {
            return Err(format!(
                "--tier must be exact, fast-tanh or f32, got `{other}`"
            ))
        }
    };
    Ok(EngineConfig {
        max_batch: args.parsed("max-batch", defaults.max_batch)?,
        batch_deadline: Duration::from_micros(args.parsed(
            "deadline-us",
            u64::try_from(defaults.batch_deadline.as_micros()).unwrap_or(0),
        )?),
        queue_capacity: args.parsed("capacity", defaults.queue_capacity)?,
        start_paused: false,
        shards: args.parsed("shards", defaults.shards)?,
        drift,
        tier,
    })
}

fn wire_of(args: &Args) -> Result<WireProtocol, String> {
    match args.get("wire").unwrap_or("json") {
        "json" => Ok(WireProtocol::Json),
        "binary" => Ok(WireProtocol::Binary),
        other => Err(format!("--wire must be json or binary, got `{other}`")),
    }
}

fn loadgen_config(args: &Args) -> Result<LoadGenConfig, String> {
    let defaults = LoadGenConfig::default();
    Ok(LoadGenConfig {
        requests: args.parsed("requests", defaults.requests)?,
        connections: args.parsed("connections", defaults.connections)?,
        seed: args.parsed("seed", defaults.seed)?,
        wire: wire_of(args)?,
    })
}

/// Either serving transport behind one face: the epoll reactor (Linux)
/// or the portable thread-per-connection server.
enum AnyServer {
    Threaded(Server),
    #[cfg(target_os = "linux")]
    Reactor(cocktail_serve::ReactorServer),
}

impl AnyServer {
    fn bind(args: &Args, addr: &str, handle: EngineHandle) -> Result<Self, String> {
        let default_transport = if cfg!(target_os = "linux") {
            "reactor"
        } else {
            "threaded"
        };
        match args.get("transport").unwrap_or(default_transport) {
            "threaded" => Ok(Self::Threaded(
                Server::bind(addr, handle).map_err(|e| format!("bind: {e}"))?,
            )),
            #[cfg(target_os = "linux")]
            "reactor" => Ok(Self::Reactor(
                cocktail_serve::ReactorServer::bind(addr, handle)
                    .map_err(|e| format!("bind: {e}"))?,
            )),
            other => Err(format!(
                "--transport `{other}` is not available on this platform"
            )),
        }
    }

    fn local_addr(&self) -> SocketAddr {
        match self {
            Self::Threaded(s) => s.local_addr(),
            #[cfg(target_os = "linux")]
            Self::Reactor(s) => s.local_addr(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Self::Threaded(_) => "threaded",
            #[cfg(target_os = "linux")]
            Self::Reactor(_) => "reactor",
        }
    }

    fn shutdown(self) {
        match self {
            Self::Threaded(s) => s.shutdown(),
            #[cfg(target_os = "linux")]
            Self::Reactor(s) => s.shutdown(),
        }
    }
}

fn print_report(report: &LoadReport) {
    println!(
        "loadgen: sent={} completed={} rejected={} fallbacks={} mismatches={} errors={} \
         reconnects={} p50_latency_us={:.1} p99_latency_us={:.1} p999_latency_us={:.1} \
         throughput_rps={:.0}",
        report.sent,
        report.completed,
        report.rejected,
        report.fallbacks,
        report.mismatches,
        report.errors,
        report.reconnects,
        report.p50_latency_us,
        report.p99_latency_us,
        report.p999_latency_us,
        report.throughput_rps
    );
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    match admit_with(bundle.clone(), &admission_config(args)?, &NullSink) {
        Ok(admitted) => {
            println!(
                "ADMITTED: {} controller for {} (claim {:.6}, recomputed {:.6}, \
                 sweep lower bound {:.6}, {} findings)",
                bundle.spec.kind(),
                bundle.system.label(),
                bundle.lipschitz_claim,
                admitted.recomputed_bound,
                admitted.sweep_lower_bound,
                admitted.report.diagnostics().len()
            );
            match (&admitted.safety, &admitted.uncertified_reason) {
                (Some(cert), _) => println!(
                    "safety: verdict {} re-derived in {:.0} ms ({} pieces, \
                     epsilon {:.3e}, invariant {}/{} cells)",
                    cert.verdict.label(),
                    cert.verify_ms,
                    cert.pieces,
                    cert.epsilon,
                    cert.invariant_alive,
                    cert.invariant_cells
                ),
                (None, Some(reason)) => println!("safety: UNCERTIFIED ({reason})"),
                (None, None) => {}
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("REFUSED: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Re-derives the bundle's formal safety certificate from the shipped
/// weights, plant spec and embedded budgets, prints shipped vs fresh side
/// by side, and exits non-zero unless the two agree exactly (wall-clock
/// excluded — it is a metric, not a claim).
fn cmd_verify(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    bundle.validate().map_err(|e| e.to_string())?;
    let Some(shipped) = &bundle.safety else {
        let reason = if bundle.version < cocktail_serve::BUNDLE_VERSION {
            format!(
                "bundle format v{} predates safety certification",
                bundle.version
            )
        } else {
            "bundle omits a safety certificate".to_string()
        };
        if args.parsed("allow-uncertified", false)? {
            println!("verify: UNCERTIFIED, allowed by --allow-uncertified ({reason})");
            return Ok(ExitCode::SUCCESS);
        }
        eprintln!("verify: REFUSED: {reason}");
        return Ok(ExitCode::FAILURE);
    };
    if let Some(violation) = shipped
        .params
        .budget_ceiling_violation(&bundle.input_domain)
    {
        eprintln!("verify: REFUSED: shipped verification budgets exceed ceilings: {violation}");
        return Ok(ExitCode::FAILURE);
    }
    let (net, scale) = bundle.network().map_err(|e| e.to_string())?;
    let sys = bundle.system.dynamics();
    let fresh = cocktail_verify::certify_controller(
        sys.as_ref(),
        net,
        scale,
        &shipped.params,
        cocktail_math::parallel::default_workers(),
        &NullSink,
    )
    .map_err(|e| format!("re-derivation under the shipped budgets failed: {e}"))?;
    let row = |label: &str, c: &cocktail_verify::SafetyCert| {
        println!(
            "{label:>8}: verdict {} | pieces {} | epsilon {:.6e} | reach {} steps \
             (peak {} boxes, safe {}) | invariant {}/{} cells (digest {:016x}) | {:.0} ms",
            c.verdict.label(),
            c.pieces,
            c.epsilon,
            c.reach_steps,
            c.reach_peak_boxes,
            c.reach_safe,
            c.invariant_alive,
            c.invariant_cells,
            c.invariant_digest,
            c.verify_ms
        );
    };
    row("shipped", shipped);
    row("fresh", &fresh);
    match shipped.diff(&fresh, 0.0) {
        None => {
            println!(
                "verify: OK — certificate re-derives exactly from the shipped \
                 weights and budgets"
            );
            Ok(ExitCode::SUCCESS)
        }
        Some(field) => {
            eprintln!("verify: REFUSED: shipped and re-derived certificates disagree on `{field}`");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_serve(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    let tel = telemetry_of(args)?;
    let admitted = admit_with(bundle.clone(), &admission_config(args)?, &NullSink)
        .map_err(|e| format!("admission refused: {e}"))?;
    let config = engine_config(args)?;
    let engine = Engine::start_with(&admitted, config, None, tel).map_err(|e| e.to_string())?;
    let server = AnyServer::bind(args, args.required("addr")?, engine.handle())?;
    println!(
        "serving {} on {} ({} transport, {} shards)",
        bundle.system.label(),
        server.local_addr(),
        server.label(),
        config.shards.max(1)
    );
    // serve until killed, surfacing drift alarms as they arrive
    let retrain_dir = args.get("retrain-dir").map(PathBuf::from);
    let mut reported = 0usize;
    loop {
        std::thread::sleep(Duration::from_secs(5));
        let reports = engine.drift_reports();
        for r in &reports[reported.min(reports.len())..] {
            eprintln!(
                "drift: control dim {} moved total-variation {:.4} past {:.4} \
                 over a {}-output window",
                r.dim, r.distance, r.threshold, r.window
            );
            if let Some(dir) = &retrain_dir {
                match save_retrain_request(dir, &r.to_retrain_request(bundle.system.label())) {
                    Ok(p) => eprintln!("drift: retraining demand saved to {}", p.display()),
                    Err(e) => eprintln!("drift: could not save retraining demand: {e}"),
                }
            }
        }
        reported = reports.len();
    }
}

fn cmd_loadgen(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    let addr = args
        .required("addr")?
        .parse()
        .map_err(|e| format!("--addr: {e}"))?;
    let report =
        loadgen::run_tcp(&bundle, addr, &loadgen_config(args)?).map_err(|e| e.to_string())?;
    print_report(&report);
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_replay(args: &Args) -> Result<ExitCode, String> {
    let telemetry = PathBuf::from(args.required("telemetry")?);
    let incumbent = ControllerBundle::load(Path::new(args.required("incumbent")?))
        .map_err(|e| format!("incumbent: {e}"))?;
    let candidate = ControllerBundle::load(Path::new(args.required("candidate")?))
        .map_err(|e| format!("candidate: {e}"))?;
    let requests = load_recorded(&telemetry)?;
    if requests.is_empty() {
        return Err(format!(
            "{} holds no serve.request captures (serve with --telemetry to record them)",
            telemetry.display()
        ));
    }
    let defaults = RolloutBudget::default();
    let budget = RolloutBudget {
        max_divergence: args.parsed("max-divergence", defaults.max_divergence)?,
        max_envelope_violations: args
            .parsed("max-envelope-violations", defaults.max_envelope_violations)?,
    };
    let report = shadow_replay(&incumbent, &candidate, &requests)?;
    println!("{}", report.render());
    Ok(if report.within(&budget) {
        println!("replay: candidate within budget");
        ExitCode::SUCCESS
    } else {
        eprintln!("replay: candidate EXCEEDS budget");
        ExitCode::FAILURE
    })
}

/// The end-to-end fleet-operations drill (the CI rollout gate):
///
/// 1. serve the v1 bundle and verify a clean drill (this also freezes the
///    drift baseline);
/// 2. propose a tampered v2 — admission must refuse it;
/// 3. propose a valid v2, drive traffic through the 250‰ canary, promote,
///    and verify a clean drill against the v2 oracle;
/// 4. drive distribution-shifted traffic until the drift detector fires
///    (optionally persisting the retraining demand);
/// 5. propose a NaN-weight v3 — admission refuses; force it past
///    admission and prove the serving-side guard auto-rolls back with
///    every response still bit-identical to the v2 oracle.
#[allow(
    clippy::too_many_lines,
    reason = "the drill reads best as one linear script"
)]
fn cmd_rollout_drill(args: &Args) -> Result<ExitCode, String> {
    let fail = |msg: String| -> Result<ExitCode, String> {
        eprintln!("rollout-drill: FAIL: {msg}");
        Ok(ExitCode::FAILURE)
    };
    let v1 = load_bundle(args)?;
    let tel = telemetry_of(args)?;
    let admitted = admit_with(v1.clone(), &admission_config(args)?, &NullSink)
        .map_err(|e| format!("admission refused: {e}"))?;
    let drift_window = 128usize;
    let config = EngineConfig {
        shards: args.parsed("shards", 2)?,
        // threshold 0.6: same-distribution windows sit far below, the
        // shifted phase far above — deterministic either way
        drift: Some(DriftConfig {
            window: drift_window,
            bins: 8,
            threshold: 0.6,
        }),
        ..EngineConfig::default()
    };
    let engine = Engine::start_with(&admitted, config, None, tel).map_err(|e| e.to_string())?;
    let server = AnyServer::bind(args, "127.0.0.1:0", engine.handle())?;
    let addr = server.local_addr();
    let drill = |bundle: &ControllerBundle, seed: u64| {
        loadgen::run_tcp(
            bundle,
            addr,
            &LoadGenConfig {
                requests: 256,
                connections: 4,
                seed,
                wire: WireProtocol::Binary,
            },
        )
        .map_err(|e| e.to_string())
    };

    // 1. incumbent serves clean
    let r1 = drill(&v1, 0xD1)?;
    print_report(&r1);
    if !r1.is_clean() {
        return fail(format!("v1 drill not clean: {r1:?}"));
    }
    println!(
        "rollout-drill: v1 serving clean at epoch {}",
        engine.model_epoch()
    );

    // 2. tampered candidate: understated Lipschitz claim
    let mut tampered = v1.clone();
    tampered.lipschitz_claim *= 0.5;
    match engine.propose(tampered, &RolloutConfig::default()) {
        Err(RolloutError::Refused(e)) => {
            println!("rollout-drill: tampered candidate refused ({e})");
        }
        Ok(_) => return fail("tampered candidate was admitted".to_string()),
        Err(e) => return fail(format!("tampered candidate: wrong refusal {e}")),
    }

    // 3. valid v2: a small genuine weight change, repackaged (admission
    // recomputes its certificate) — canary, then promote
    let (net, scale) = v1.network().map_err(|e| e.to_string())?;
    let mut net2 = net.clone();
    net2.layers_mut()[0].weights_mut()[(0, 0)] += 1.0e-3;
    let v2 = ControllerBundle::package(
        v1.system,
        net2,
        scale.to_vec(),
        Provenance {
            seed: v1.provenance.seed ^ 0xF00D,
            config_hash: v1.provenance.config_hash,
            crate_version: v1.provenance.crate_version.clone(),
        },
    )
    .map_err(|e| format!("package v2: {e}"))?;
    let canary_epoch = engine
        .propose(
            v2.clone(),
            &RolloutConfig {
                fraction_permille: 250,
                budget: RolloutBudget::default(),
            },
        )
        .map_err(|e| format!("propose v2: {e}"))?;
    // canary-routed responses come from v2, so mismatches against the v1
    // oracle ARE the measured divergence; fallbacks/errors must stay zero
    let r2 = drill(&v1, 0xD2)?;
    print_report(&r2);
    if r2.fallbacks != 0 || r2.errors != 0 || r2.rejected != 0 || r2.completed != r2.sent {
        return fail(format!("canary drill degraded: {r2:?}"));
    }
    let status = engine.rollout_status();
    if status.canary_shadowed == 0 {
        return fail("canary saw no traffic at 250/1000".to_string());
    }
    println!(
        "rollout-drill: canary at epoch {canary_epoch} shadowed {} requests \
         (divergence max {:.3e})",
        status.canary_shadowed, status.divergence.max
    );
    let promoted_epoch = engine.promote().map_err(|e| format!("promote: {e}"))?;
    let r3 = drill(&v2, 0xD3)?;
    print_report(&r3);
    if !r3.is_clean() {
        return fail(format!("post-promote drill not clean: {r3:?}"));
    }
    println!("rollout-drill: promoted to epoch {promoted_epoch}, serving v2 clean");

    // 4. distribution shift: constant corner-of-domain states collapse
    // the served-output histogram into one bin — drift must fire
    let corner: Vec<f64> = v1.input_domain.lower();
    let mut client = BinaryTcpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    for _ in 0..(3 * drift_window) {
        client
            .control(&corner)
            .map_err(|e| format!("shifted request: {e}"))?;
    }
    let reports = engine.drift_reports();
    let Some(first) = reports.first() else {
        return fail("drift never fired under shifted traffic".to_string());
    };
    println!(
        "rollout-drill: drift raised on control dim {} (total-variation {:.4} > {:.4})",
        first.dim, first.distance, first.threshold
    );
    if let Some(dir) = args.get("retrain-dir") {
        let path =
            save_retrain_request(Path::new(dir), &first.to_retrain_request(v1.system.label()))
                .map_err(|e| format!("save retraining demand: {e}"))?;
        println!(
            "rollout-drill: retraining demand saved to {}",
            path.display()
        );
    }

    // 5. corrupted v3: refused by admission, then forced past it to prove
    // the serving-side guard
    let mut v3 = v2.clone();
    if let cocktail_analysis::ControllerSpec::Mlp { net, .. } = &mut v3.spec {
        net.layers_mut()[0].weights_mut()[(0, 0)] = f64::NAN;
    }
    match engine.propose(v3, &RolloutConfig::default()) {
        Err(RolloutError::Refused(e)) => {
            println!("rollout-drill: corrupted candidate refused by admission ({e})");
        }
        Ok(_) => return fail("corrupted candidate was admitted".to_string()),
        Err(e) => return fail(format!("corrupted candidate: wrong refusal {e}")),
    }
    let mut nan_net = net.clone();
    nan_net.layers_mut()[0].weights_mut()[(0, 0)] = f64::NAN;
    engine
        .propose_parts(
            nan_net,
            scale.to_vec(),
            v1.u_inf.clone(),
            v1.u_sup.clone(),
            &RolloutConfig {
                fraction_permille: 500,
                budget: RolloutBudget::default(),
            },
        )
        .map_err(|e| format!("force-install v3: {e}"))?;
    // every canary-routed row must be answered from the incumbent shadow:
    // the drill stays bit-identical to the v2 oracle, zero escapes
    let r4 = drill(&v2, 0xD4)?;
    print_report(&r4);
    if !r4.is_clean() {
        return fail(format!(
            "corrupted-candidate output escaped (drill vs v2 oracle): {r4:?}"
        ));
    }
    let events = engine.rollout_events();
    if !events
        .iter()
        .any(|e| matches!(e.action, RolloutAction::AutoRolledBack))
    {
        return fail("auto-rollback never fired on the NaN candidate".to_string());
    }
    let final_status = engine.rollout_status();
    if final_status.canary_active {
        return fail("canary still active after auto-rollback".to_string());
    }
    println!(
        "rollout-drill: NaN candidate auto-rolled back at epoch {} with zero escaped responses",
        final_status.epoch
    );
    server.shutdown();
    engine.shutdown();
    println!("rollout-drill: PASS");
    Ok(ExitCode::SUCCESS)
}

fn cmd_smoke(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    let tel = telemetry_of(args)?;
    let admitted = admit_with(bundle.clone(), &admission_config(args)?, &NullSink)
        .map_err(|e| format!("admission refused: {e}"))?;
    let config = engine_config(args)?;
    let engine = Engine::start_with(&admitted, config, None, tel).map_err(|e| e.to_string())?;
    let server = AnyServer::bind(args, "127.0.0.1:0", engine.handle())?;
    let transport = server.label();
    let report = loadgen::run_tcp(&bundle, server.local_addr(), &loadgen_config(args)?)
        .map_err(|e| e.to_string())?;
    server.shutdown();
    engine.shutdown();
    print_report(&report);
    if report.is_clean() {
        println!(
            "smoke: clean over the {transport} transport with {} shards \
             (every response bit-identical to the per-sample reference)",
            config.shards.max(1)
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("smoke: NOT clean");
        Ok(ExitCode::FAILURE)
    }
}
