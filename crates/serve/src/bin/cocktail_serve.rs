//! `cocktail-serve` — the controller-serving CLI.
//!
//! ```text
//! cocktail-serve check   --bundle student.bundle.json
//! cocktail-serve serve   --bundle student.bundle.json --addr 127.0.0.1:7501
//! cocktail-serve loadgen --bundle student.bundle.json --addr 127.0.0.1:7501
//! cocktail-serve smoke   --bundle student.bundle.json --telemetry tel.jsonl
//! ```
//!
//! `check` runs admission and prints the evidence; `serve` admits then
//! serves over TCP until killed; `loadgen` drives an already-running
//! server and verifies every response bit-for-bit; `smoke` does
//! admit + serve + loadgen in one process on an ephemeral port and exits
//! non-zero on any fallback, mismatch, rejection, or error — the CI entry
//! point.
//!
//! Serving commands take `--shards N` (engine shards) and `--transport
//! reactor|threaded` (epoll reactor on Linux, thread-per-connection
//! anywhere; the default picks the reactor where it exists). Drill
//! commands take `--wire json|binary` to pick the frame format.

use cocktail_obs::{JsonlSink, NullSink, Telemetry};
use cocktail_serve::loadgen::{self, LoadGenConfig, LoadReport, WireProtocol};
use cocktail_serve::{admit, ControllerBundle, Engine, EngineConfig, EngineHandle, Server};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{}`", raw[i]))?;
            let value = raw
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            flags.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} got unparseable value `{v}`")),
        }
    }
}

fn usage() -> String {
    "usage: cocktail-serve <check|serve|loadgen|smoke> --bundle <path> [options]\n\
     \n\
     check   --bundle <path>\n\
     serve   --bundle <path> --addr <ip:port> [--max-batch N] [--deadline-us N]\n\
             [--capacity N] [--shards N] [--transport reactor|threaded] [--telemetry <jsonl>]\n\
     loadgen --bundle <path> --addr <ip:port> [--requests N] [--connections N] [--seed N]\n\
             [--wire json|binary]\n\
     smoke   --bundle <path> [--requests N] [--connections N] [--seed N] [--wire json|binary]\n\
             [--telemetry <jsonl>] [--max-batch N] [--deadline-us N] [--capacity N]\n\
             [--shards N] [--transport reactor|threaded]"
        .to_string()
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let result = match Args::parse(&raw[1..]) {
        Err(e) => Err(e),
        Ok(args) => match command.as_str() {
            "check" => cmd_check(&args),
            "serve" => cmd_serve(&args),
            "loadgen" => cmd_loadgen(&args),
            "smoke" => cmd_smoke(&args),
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        },
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cocktail-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_bundle(args: &Args) -> Result<ControllerBundle, String> {
    let path = PathBuf::from(args.required("bundle")?);
    ControllerBundle::load(&path).map_err(|e| e.to_string())
}

fn telemetry_of(args: &Args) -> Result<Arc<dyn Telemetry>, String> {
    match args.get("telemetry") {
        None => Ok(Arc::new(NullSink)),
        Some(path) => Ok(Arc::new(
            JsonlSink::create(Path::new(path)).map_err(|e| format!("telemetry sink: {e}"))?,
        )),
    }
}

fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    let defaults = EngineConfig::default();
    Ok(EngineConfig {
        max_batch: args.parsed("max-batch", defaults.max_batch)?,
        batch_deadline: Duration::from_micros(args.parsed(
            "deadline-us",
            u64::try_from(defaults.batch_deadline.as_micros()).unwrap_or(0),
        )?),
        queue_capacity: args.parsed("capacity", defaults.queue_capacity)?,
        start_paused: false,
        shards: args.parsed("shards", defaults.shards)?,
    })
}

fn wire_of(args: &Args) -> Result<WireProtocol, String> {
    match args.get("wire").unwrap_or("json") {
        "json" => Ok(WireProtocol::Json),
        "binary" => Ok(WireProtocol::Binary),
        other => Err(format!("--wire must be json or binary, got `{other}`")),
    }
}

fn loadgen_config(args: &Args) -> Result<LoadGenConfig, String> {
    let defaults = LoadGenConfig::default();
    Ok(LoadGenConfig {
        requests: args.parsed("requests", defaults.requests)?,
        connections: args.parsed("connections", defaults.connections)?,
        seed: args.parsed("seed", defaults.seed)?,
        wire: wire_of(args)?,
    })
}

/// Either serving transport behind one face: the epoll reactor (Linux)
/// or the portable thread-per-connection server.
enum AnyServer {
    Threaded(Server),
    #[cfg(target_os = "linux")]
    Reactor(cocktail_serve::ReactorServer),
}

impl AnyServer {
    fn bind(args: &Args, addr: &str, handle: EngineHandle) -> Result<Self, String> {
        let default_transport = if cfg!(target_os = "linux") {
            "reactor"
        } else {
            "threaded"
        };
        match args.get("transport").unwrap_or(default_transport) {
            "threaded" => Ok(Self::Threaded(
                Server::bind(addr, handle).map_err(|e| format!("bind: {e}"))?,
            )),
            #[cfg(target_os = "linux")]
            "reactor" => Ok(Self::Reactor(
                cocktail_serve::ReactorServer::bind(addr, handle)
                    .map_err(|e| format!("bind: {e}"))?,
            )),
            other => Err(format!(
                "--transport `{other}` is not available on this platform"
            )),
        }
    }

    fn local_addr(&self) -> SocketAddr {
        match self {
            Self::Threaded(s) => s.local_addr(),
            #[cfg(target_os = "linux")]
            Self::Reactor(s) => s.local_addr(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Self::Threaded(_) => "threaded",
            #[cfg(target_os = "linux")]
            Self::Reactor(_) => "reactor",
        }
    }

    fn shutdown(self) {
        match self {
            Self::Threaded(s) => s.shutdown(),
            #[cfg(target_os = "linux")]
            Self::Reactor(s) => s.shutdown(),
        }
    }
}

fn print_report(report: &LoadReport) {
    println!(
        "loadgen: sent={} completed={} rejected={} fallbacks={} mismatches={} errors={} \
         p50_latency_us={:.1} p99_latency_us={:.1} p999_latency_us={:.1} throughput_rps={:.0}",
        report.sent,
        report.completed,
        report.rejected,
        report.fallbacks,
        report.mismatches,
        report.errors,
        report.p50_latency_us,
        report.p99_latency_us,
        report.p999_latency_us,
        report.throughput_rps
    );
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    match admit(bundle.clone()) {
        Ok(admitted) => {
            println!(
                "ADMITTED: {} controller for {} (claim {:.6}, recomputed {:.6}, \
                 sweep lower bound {:.6}, {} findings)",
                bundle.spec.kind(),
                bundle.system.label(),
                bundle.lipschitz_claim,
                admitted.recomputed_bound,
                admitted.sweep_lower_bound,
                admitted.report.diagnostics().len()
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("REFUSED: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_serve(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    let tel = telemetry_of(args)?;
    let admitted = admit(bundle.clone()).map_err(|e| format!("admission refused: {e}"))?;
    let config = engine_config(args)?;
    let engine = Engine::start_with(&admitted, config, None, tel).map_err(|e| e.to_string())?;
    let server = AnyServer::bind(args, args.required("addr")?, engine.handle())?;
    println!(
        "serving {} on {} ({} transport, {} shards)",
        bundle.system.label(),
        server.local_addr(),
        server.label(),
        config.shards.max(1)
    );
    // serve until killed
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn cmd_loadgen(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    let addr = args
        .required("addr")?
        .parse()
        .map_err(|e| format!("--addr: {e}"))?;
    let report =
        loadgen::run_tcp(&bundle, addr, &loadgen_config(args)?).map_err(|e| e.to_string())?;
    print_report(&report);
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_smoke(args: &Args) -> Result<ExitCode, String> {
    let bundle = load_bundle(args)?;
    let tel = telemetry_of(args)?;
    let admitted = admit(bundle.clone()).map_err(|e| format!("admission refused: {e}"))?;
    let config = engine_config(args)?;
    let engine = Engine::start_with(&admitted, config, None, tel).map_err(|e| e.to_string())?;
    let server = AnyServer::bind(args, "127.0.0.1:0", engine.handle())?;
    let transport = server.label();
    let report = loadgen::run_tcp(&bundle, server.local_addr(), &loadgen_config(args)?)
        .map_err(|e| e.to_string())?;
    server.shutdown();
    engine.shutdown();
    print_report(&report);
    if report.is_clean() {
        println!(
            "smoke: clean over the {transport} transport with {} shards \
             (every response bit-identical to the per-sample reference)",
            config.shards.max(1)
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("smoke: NOT clean");
        Ok(ExitCode::FAILURE)
    }
}
