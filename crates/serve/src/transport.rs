//! The portable TCP transport: framed JSON and the binary wire protocol
//! on one port, one thread per connection.
//!
//! JSON frame format: a 4-byte big-endian length followed by that many
//! bytes of JSON. Requests carry `{id, state}`; responses always carry
//! all of `{id, control, fallback, error}` — an empty `error` string
//! means success, a non-empty one explains the refusal (the vendored
//! serde shim has no `Option` sugar, and a fixed shape keeps foreign
//! clients trivial).
//!
//! A client may instead send the [`WIRE_HELLO`] byte (`0xC1`) as its very
//! first byte, switching the connection to the fixed-layout binary
//! format in [`crate::wire`]. A JSON frame's first byte is the high byte
//! of a length capped at 1 MiB — always `0x00` — so the two protocols
//! are unambiguous without a handshake round trip.
//!
//! Every connection is pinned to an engine shard by its accept-order
//! connection id ([`EngineHandle::pinned`]), so a given connection's
//! requests always land on the same queue. One connection may pipeline
//! many requests; cross-connection concurrency is what actually fills
//! batches. This thread-per-connection server is the portable fallback;
//! on Linux the epoll reactor ([`crate::reactor`]) serves the same two
//! protocols without a thread per socket.

use crate::bundle::fnv1a_64;
use crate::engine::{ControlResponse, EngineHandle, PinnedHandle, ServeError};
use crate::wire::{self, ResponseRec, WIRE_HELLO};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Refuse frames above this size; a control request is a few dozen
/// numbers, so anything near this is a protocol error, not a workload.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Client-side robustness knobs shared by both protocol clients.
///
/// Requests are pure functions of the state vector, so a
/// reconnect-and-resend after a dropped connection is always safe; the
/// backoff jitter is a deterministic function of `seed` and the attempt
/// number, keeping retry timing reproducible in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Give up a connect attempt after this long (`None`: OS default).
    pub connect_timeout: Option<Duration>,
    /// Give up a blocking response read after this long (`None`: wait
    /// forever).
    pub read_timeout: Option<Duration>,
    /// How many reconnect-and-resend attempts one request gets after a
    /// transport error (0 restores fail-fast).
    pub max_reconnects: u32,
    /// First backoff delay; doubles per attempt up to `backoff_cap`.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(10)),
            max_reconnects: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            seed: 0xc0c7,
        }
    }
}

/// Deterministic truncated exponential backoff with FNV-derived jitter:
/// `min(cap, base * 2^attempt) + fnv(seed, attempt) % base`.
fn backoff_delay(config: &ClientConfig, attempt: u32) -> Duration {
    let base_ms = u64::try_from(config.backoff_base.as_millis())
        .unwrap_or(u64::MAX)
        .max(1);
    let cap_ms = u64::try_from(config.backoff_cap.as_millis())
        .unwrap_or(u64::MAX)
        .max(base_ms);
    let exp = base_ms.saturating_mul(1u64 << attempt.min(20)).min(cap_ms);
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&config.seed.to_le_bytes());
    key[8..].copy_from_slice(&attempt.to_le_bytes());
    Duration::from_millis(exp + fnv1a_64(&key) % base_ms)
}

fn resolve<A: ToSocketAddrs>(addr: A) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing"))
}

fn open_stream(addr: SocketAddr, config: &ClientConfig) -> io::Result<TcpStream> {
    let stream = match config.connect_timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    Ok(stream)
}

/// Maps a transport-level failure that survived every reconnect attempt
/// to the client-visible error: hangups become [`ServeError::Shutdown`],
/// everything else keeps its cause.
fn transport_error(e: &io::Error) -> ServeError {
    if matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
    ) {
        ServeError::Shutdown
    } else {
        ServeError::BadRequest(format!("transport failure: {e}"))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct WireRequest {
    id: u64,
    state: Vec<f64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct WireResponse {
    id: u64,
    control: Vec<f64>,
    fallback: bool,
    error: String,
}

/// Anything that can answer a control request — the in-process engine
/// handle or a TCP client. The load generator is written against this so
/// the same drill runs in-process and over the wire.
pub trait ControlClient {
    /// Computes the clipped control for `state`.
    ///
    /// # Errors
    ///
    /// Propagates the server-side [`ServeError`].
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError>;

    /// How many times this client re-established a dropped connection.
    /// In-process handles never reconnect.
    fn reconnects(&self) -> u64 {
        0
    }
}

impl ControlClient for EngineHandle {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.submit(state)
    }
}

impl ControlClient for PinnedHandle {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.submit(state)
    }
}

impl ControlClient for Box<dyn ControlClient + Send> {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        (**self).control(state)
    }

    fn reconnects(&self) -> u64 {
        (**self).reconnects()
    }
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    read_frame_after_len(stream, len_buf)
}

fn read_frame_after_len(stream: &mut TcpStream, len_buf: [u8; 4]) -> io::Result<Vec<u8>> {
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// A serving endpoint: accept loop plus one thread per connection, all
/// feeding shard-pinned handles of the shared engine.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, handle: EngineHandle) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("cocktail-serve-accept".into())
            .spawn(move || {
                let next_conn = AtomicU64::new(0);
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_id = next_conn.fetch_add(1, Ordering::Relaxed);
                    let pinned = handle.pinned(conn_id);
                    // connection threads are detached: they exit when the
                    // peer hangs up or the engine shuts down
                    let _ = std::thread::Builder::new()
                        .name("cocktail-serve-conn".into())
                        .spawn(move || serve_connection(stream, &pinned));
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// In-flight connections finish on their own.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // the accept loop only observes `stop` between connections; poke
        // it with a throwaway connect so it wakes up and exits
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_connection(mut stream: TcpStream, handle: &PinnedHandle) {
    // protocol sniff: 0xC1 switches to the binary wire format; anything
    // else is the first byte of a JSON frame length
    let mut first = [0u8; 1];
    if stream.read_exact(&mut first).is_err() {
        return;
    }
    if first[0] == WIRE_HELLO {
        serve_binary_connection(stream, handle);
    } else {
        serve_json_connection(stream, handle, first[0]);
    }
}

fn serve_json_connection(mut stream: TcpStream, handle: &PinnedHandle, first_len_byte: u8) {
    let mut sniffed = Some(first_len_byte);
    loop {
        let mut len_buf = [0u8; 4];
        match sniffed.take() {
            Some(b0) => {
                let mut rest = [0u8; 3];
                if stream.read_exact(&mut rest).is_err() {
                    return;
                }
                len_buf = [b0, rest[0], rest[1], rest[2]];
            }
            None => {
                if stream.read_exact(&mut len_buf).is_err() {
                    return; // peer hung up between frames
                }
            }
        }
        let len = u32::from_be_bytes(len_buf);
        if len > MAX_FRAME_BYTES {
            // the stream cannot resynchronise after a framing violation:
            // send a status-coded goodbye instead of a silent hangup, then
            // close
            let goodbye = WireResponse {
                id: 0,
                control: Vec::new(),
                fallback: false,
                error: format!(
                    "malformed frame: length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
                ),
            };
            if let Ok(encoded) = serde_json::to_string(&goodbye) {
                let _ = write_frame(&mut stream, encoded.as_bytes());
            }
            return;
        }
        let mut body = vec![0u8; len as usize];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let parsed = std::str::from_utf8(&body)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str::<WireRequest>(text).map_err(|e| e.to_string()));
        let response = match parsed {
            Ok(req) => {
                let (control, fallback, error) = match handle.submit(&req.state) {
                    Ok(resp) => (resp.control, resp.served_by_fallback, String::new()),
                    Err(e) => (Vec::new(), false, e.to_string()),
                };
                WireResponse {
                    id: req.id,
                    control,
                    fallback,
                    error,
                }
            }
            Err(e) => WireResponse {
                id: 0,
                control: Vec::new(),
                fallback: false,
                error: format!("unparseable request: {e}"),
            },
        };
        let Ok(encoded) = serde_json::to_string(&response) else {
            return;
        };
        if write_frame(&mut stream, encoded.as_bytes()).is_err() {
            return;
        }
    }
}

fn serve_binary_connection(mut stream: TcpStream, handle: &PinnedHandle) {
    let mut rbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut state: Vec<f64> = Vec::with_capacity(handle.state_dim());
    let mut chunk = [0u8; 4096];
    loop {
        let Ok(n) = stream.read(&mut chunk) else {
            return;
        };
        if n == 0 {
            return; // orderly hangup
        }
        rbuf.extend_from_slice(&chunk[..n]);
        wbuf.clear();
        let mut consumed = 0usize;
        loop {
            match wire::decode_request(&rbuf[consumed..], &mut state) {
                Ok(Some((id, used))) => {
                    consumed += used;
                    let rec = match handle.submit(&state) {
                        Ok(resp) => ResponseRec::ok(id, &resp.control, resp.served_by_fallback),
                        Err(e) => ResponseRec::err(id, wire::status_of_error(&e)),
                    };
                    wire::encode_response_into(&rec, &mut wbuf);
                }
                Ok(None) => break,
                Err(_) => {
                    // unrecoverable framing violation: flush whatever was
                    // already answered, report a status-coded malformed-frame
                    // record (id 0: no request survived decoding), and close
                    wire::encode_response_into(
                        &ResponseRec::err(0, wire::STATUS_MALFORMED_FRAME),
                        &mut wbuf,
                    );
                    let _ = stream.write_all(&wbuf).and_then(|()| stream.flush());
                    return;
                }
            }
        }
        if consumed > 0 {
            rbuf.copy_within(consumed.., 0);
            rbuf.truncate(rbuf.len() - consumed);
        }
        if !wbuf.is_empty() && (stream.write_all(&wbuf).is_err() || stream.flush().is_err()) {
            return;
        }
    }
}

/// A blocking client speaking the framed-JSON protocol, with bounded
/// reconnect-and-resend on transport errors ([`ClientConfig`]).
pub struct TcpClient {
    stream: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
    next_id: u64,
    reconnects: u64,
}

impl TcpClient {
    /// Connects to a [`Server`] with [`ClientConfig::default`].
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit robustness knobs.
    ///
    /// # Errors
    ///
    /// Propagates resolve/connect failures.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Self> {
        let addr = resolve(addr)?;
        let stream = open_stream(addr, &config)?;
        Ok(Self {
            stream,
            addr,
            config,
            next_id: 1,
            reconnects: 0,
        })
    }

    /// Test hook: tears the TCP connection down without telling the
    /// client, as a mid-flight network failure would.
    pub fn sever(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// One send-and-receive over the current connection. `Err` is a
    /// transport failure (retryable by reconnecting); the inner result is
    /// the server's final answer.
    fn try_once(
        &mut self,
        id: u64,
        encoded: &str,
    ) -> io::Result<Result<ControlResponse, ServeError>> {
        write_frame(&mut self.stream, encoded.as_bytes())?;
        let body = read_frame(&mut self.stream)?;
        let text = match std::str::from_utf8(&body) {
            Ok(t) => t,
            Err(e) => {
                return Ok(Err(ServeError::BadRequest(format!(
                    "non-UTF-8 response: {e}"
                ))))
            }
        };
        let response: WireResponse = match serde_json::from_str(text) {
            Ok(r) => r,
            Err(e) => return Ok(Err(ServeError::BadRequest(format!("decode response: {e}")))),
        };
        if response.id != id {
            return Ok(Err(ServeError::BadRequest(format!(
                "response id {} != request id {id}",
                response.id
            ))));
        }
        Ok(if response.error.is_empty() {
            Ok(ControlResponse {
                control: response.control,
                served_by_fallback: response.fallback,
            })
        } else if response.error.starts_with("queue full") {
            Err(ServeError::Backpressure { depth: 0 })
        } else if response.error.contains("non-finite controller output") {
            Err(ServeError::NonFiniteOutput)
        } else if response.error.contains("engine shut down") {
            Err(ServeError::Shutdown)
        } else {
            Err(ServeError::BadRequest(response.error))
        })
    }
}

impl ControlClient for TcpClient {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = WireRequest {
            id,
            state: state.to_vec(),
        };
        let encoded = serde_json::to_string(&request)
            .map_err(|e| ServeError::BadRequest(format!("encode request: {e}")))?;
        let mut attempt = 0u32;
        loop {
            match self.try_once(id, &encoded) {
                Ok(result) => return result,
                Err(e) => {
                    if attempt >= self.config.max_reconnects {
                        return Err(transport_error(&e));
                    }
                    std::thread::sleep(backoff_delay(&self.config, attempt));
                    attempt += 1;
                    // a failed reconnect keeps the dead stream; the next
                    // try_once fails fast and burns another attempt
                    if let Ok(stream) = open_stream(self.addr, &self.config) {
                        self.stream = stream;
                        self.reconnects += 1;
                    }
                }
            }
        }
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }
}

/// A blocking client speaking the binary wire protocol (hello byte, then
/// fixed-layout frames). Its buffers are reused across requests, so a
/// steady-state request performs no client-side allocation either.
/// Transport errors trigger bounded reconnect-and-resend like
/// [`TcpClient`]; a reconnect replays the hello byte and discards any
/// half-read response bytes.
pub struct BinaryTcpClient {
    stream: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
    next_id: u64,
    reconnects: u64,
    rbuf: Vec<u8>,
    frame: Vec<u8>,
    filled: usize,
}

impl BinaryTcpClient {
    /// Connects and sends the protocol hello byte, with
    /// [`ClientConfig::default`].
    ///
    /// # Errors
    ///
    /// Propagates connect/write failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit robustness knobs.
    ///
    /// # Errors
    ///
    /// Propagates resolve/connect/write failures.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Self> {
        let addr = resolve(addr)?;
        let mut stream = open_stream(addr, &config)?;
        stream.write_all(&[WIRE_HELLO])?;
        Ok(Self {
            stream,
            addr,
            config,
            next_id: 1,
            reconnects: 0,
            rbuf: vec![0u8; 4096],
            frame: Vec::with_capacity(256),
            filled: 0,
        })
    }

    /// Test hook: tears the TCP connection down without telling the
    /// client, as a mid-flight network failure would.
    pub fn sever(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// One send-and-receive over the current connection; `self.frame`
    /// already holds the encoded request. `Err` is a transport failure
    /// (retryable by reconnecting); the inner result is final.
    fn try_once(&mut self, id: u64) -> io::Result<Result<ControlResponse, ServeError>> {
        self.stream
            .write_all(&self.frame)
            .and_then(|()| self.stream.flush())?;
        let mut rec = ResponseRec::err(0, wire::STATUS_BAD_REQUEST);
        loop {
            match wire::decode_response(&self.rbuf[..self.filled], &mut rec) {
                Ok(Some(used)) => {
                    self.rbuf.copy_within(used..self.filled, 0);
                    self.filled -= used;
                    break;
                }
                Ok(None) => {
                    if self.filled == self.rbuf.len() {
                        self.rbuf.resize(self.rbuf.len() * 2, 0);
                    }
                    let n = self.stream.read(&mut self.rbuf[self.filled..])?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-response",
                        ));
                    }
                    self.filled += n;
                }
                // a decode error is the server speaking a different
                // protocol, not a flaky network: fatal, no retry
                Err(e) => return Ok(Err(ServeError::BadRequest(e.to_string()))),
            }
        }
        // id 0 is reserved for connection-level error records (the server
        // couldn't attribute the failure to a request it decoded)
        if rec.id != id {
            if rec.id == 0 {
                if let Some(e) = wire::error_of_status(rec.status) {
                    return Ok(Err(e));
                }
            }
            return Ok(Err(ServeError::BadRequest(format!(
                "response id {} != request id {id}",
                rec.id
            ))));
        }
        Ok(match wire::error_of_status(rec.status) {
            None => Ok(ControlResponse {
                control: rec.control().to_vec(),
                served_by_fallback: rec.status == wire::STATUS_OK_FALLBACK,
            }),
            Some(e) => Err(e),
        })
    }
}

impl ControlClient for BinaryTcpClient {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.frame.clear();
        wire::encode_request_into(id, state, &mut self.frame);
        let mut attempt = 0u32;
        loop {
            match self.try_once(id) {
                Ok(result) => return result,
                Err(e) => {
                    if attempt >= self.config.max_reconnects {
                        return Err(transport_error(&e));
                    }
                    std::thread::sleep(backoff_delay(&self.config, attempt));
                    attempt += 1;
                    if let Ok(mut stream) = open_stream(self.addr, &self.config) {
                        if stream.write_all(&[WIRE_HELLO]).is_ok() {
                            self.stream = stream;
                            self.filled = 0; // stale half-frames are gone
                            self.reconnects += 1;
                        }
                    }
                }
            }
        }
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use cocktail_math::vector;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::NullSink;

    fn test_engine() -> Engine {
        test_engine_sharded(1)
    }

    fn test_engine_sharded(shards: usize) -> Engine {
        let net = MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(11)
            .build();
        Engine::from_parts(
            net,
            vec![1.5],
            vec![-4.0],
            vec![4.0],
            EngineConfig {
                shards,
                ..EngineConfig::default()
            },
            None,
            std::sync::Arc::new(NullSink),
        )
        .expect("engine starts")
    }

    #[test]
    fn tcp_round_trip_matches_in_process_answer() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        let state = [0.2, -0.7];
        let over_wire = client.control(&state).expect("served");
        let in_process = engine.handle().submit(&state).expect("served");
        assert_eq!(over_wire, in_process);
        server.shutdown();
    }

    #[test]
    fn binary_round_trip_matches_json_bit_for_bit() {
        let engine = test_engine_sharded(2);
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut json = TcpClient::connect(server.local_addr()).expect("connect");
        let mut binary = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        for i in 0..32 {
            let s = [f64::from(i) * 0.04 - 0.6, 0.3];
            let via_json = json.control(&s).expect("served");
            let via_binary = binary.control(&s).expect("served");
            assert_eq!(via_json, via_binary, "wire formats must agree bitwise");
        }
        server.shutdown();
    }

    #[test]
    fn binary_errors_travel_as_status_codes() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        let err = client.control(&[1.0, 2.0, 3.0]).expect_err("wrong dim");
        assert!(matches!(err, ServeError::BadRequest(_)));
        // the connection survives a refused request
        assert!(client.control(&[0.0, 0.0]).is_ok());
        server.shutdown();
    }

    #[test]
    fn malformed_state_travels_back_as_an_error() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        let err = client.control(&[1.0, 2.0, 3.0]).expect_err("wrong dim");
        assert!(matches!(err, ServeError::BadRequest(_)));
        // the connection survives a refused request
        assert!(client.control(&[0.0, 0.0]).is_ok());
        server.shutdown();
    }

    fn fast_retry_config() -> ClientConfig {
        ClientConfig {
            max_reconnects: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let cfg = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            seed: 42,
            ..ClientConfig::default()
        };
        let first: Vec<Duration> = (0..6).map(|i| backoff_delay(&cfg, i)).collect();
        let second: Vec<Duration> = (0..6).map(|i| backoff_delay(&cfg, i)).collect();
        assert_eq!(first, second, "same seed must give identical delays");
        for d in &first {
            assert!(*d >= Duration::from_millis(10), "at least the base");
            assert!(*d < Duration::from_millis(90), "cap plus jitter bound");
        }
    }

    #[test]
    fn json_client_reconnects_after_a_severed_connection() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client =
            TcpClient::connect_with(server.local_addr(), fast_retry_config()).expect("connect");
        let s = [0.1, -0.2];
        let before = client.control(&s).expect("served");
        client.sever();
        let after = client.control(&s).expect("served after reconnect");
        assert_eq!(before, after, "resent request answers identically");
        assert_eq!(client.reconnects(), 1);
        server.shutdown();
    }

    #[test]
    fn binary_client_reconnects_after_a_severed_connection() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = BinaryTcpClient::connect_with(server.local_addr(), fast_retry_config())
            .expect("connect");
        let s = [0.1, -0.2];
        let before = client.control(&s).expect("served");
        client.sever();
        let after = client.control(&s).expect("served after reconnect");
        assert_eq!(before, after, "resent request answers identically");
        assert_eq!(client.reconnects(), 1);
        server.shutdown();
    }

    #[test]
    fn corrupted_binary_frames_get_a_status_reply_then_close() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let oversized_dim = {
            let mut f = vec![wire::TAG_REQUEST];
            f.extend_from_slice(&7u64.to_le_bytes());
            f.push(200); // dim 200 > MAX_WIRE_STATE_DIM
            f
        };
        let truncated = {
            let mut f = Vec::new();
            wire::encode_request_into(7, &[0.5, -0.5], &mut f);
            f.truncate(f.len() / 2);
            f
        };
        // (name, bytes after hello, expect a malformed-frame reply?)
        let cases: Vec<(&str, Vec<u8>, bool)> = vec![
            ("bad tag", vec![0x7F; 18], true),
            ("oversized dim", oversized_dim, true),
            ("truncated then closed", truncated, false),
        ];
        for (name, payload, expect_reply) in cases {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            stream.write_all(&[WIRE_HELLO]).expect("hello");
            stream.write_all(&payload).expect("payload");
            stream.flush().expect("flush");
            if expect_reply {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 256];
                let mut rec = ResponseRec::err(0, wire::STATUS_OK);
                loop {
                    match wire::decode_response(&buf, &mut rec).expect("client-side decode") {
                        Some(_) => break,
                        None => {
                            let n = stream.read(&mut chunk).expect("read reply");
                            assert!(n > 0, "{name}: server closed without a status reply");
                            buf.extend_from_slice(&chunk[..n]);
                        }
                    }
                }
                assert_eq!(
                    (rec.id, rec.status),
                    (0, wire::STATUS_MALFORMED_FRAME),
                    "{name}: connection-level malformed-frame record"
                );
            } else {
                // a half-sent frame is not an error until the peer gives
                // up: close our side and expect a quiet hangup back
                stream
                    .shutdown(std::net::Shutdown::Write)
                    .expect("shutdown write");
            }
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).expect("drain to EOF");
            assert!(rest.is_empty(), "{name}: server closes after the reply");
        }
        // none of that corruption hurt the server
        let mut client = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        assert!(client.control(&[0.0, 0.0]).is_ok());
        server.shutdown();
    }

    #[test]
    fn corrupted_json_frames_get_an_error_reply_then_close() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        // an oversized length prefix, and a "bad magic" first byte that is
        // neither a JSON length high byte (0x00) nor the binary hello
        for first in [[0x10u8, 0x00, 0x00, 0x01], [0x7F, 0xFF, 0xFF, 0xFF]] {
            let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            stream.write_all(&first).expect("length prefix");
            stream.flush().expect("flush");
            let mut len_buf = [0u8; 4];
            stream
                .read_exact(&mut len_buf)
                .expect("length of the goodbye frame");
            let mut body = vec![0u8; u32::from_be_bytes(len_buf) as usize];
            stream.read_exact(&mut body).expect("goodbye body");
            let text = std::str::from_utf8(&body).expect("UTF-8 goodbye");
            assert!(text.contains("malformed frame"), "got: {text}");
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).expect("drain to EOF");
            assert!(rest.is_empty(), "server closes after the goodbye");
        }
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        assert!(client.control(&[0.0, 0.0]).is_ok());
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_keep_their_ids_straight() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        for i in 0..20 {
            let s = [f64::from(i) * 0.05, -0.1];
            let got = client.control(&s).expect("served");
            let raw = engine.handle().submit(&s).expect("served");
            assert_eq!(got, raw);
            assert_eq!(
                got.control,
                vector::clip(&got.control, &[-4.0], &[4.0]),
                "wire output respects the clip envelope"
            );
        }
        server.shutdown();
    }
}
