//! The portable TCP transport: framed JSON and the binary wire protocol
//! on one port, one thread per connection.
//!
//! JSON frame format: a 4-byte big-endian length followed by that many
//! bytes of JSON. Requests carry `{id, state}`; responses always carry
//! all of `{id, control, fallback, error}` — an empty `error` string
//! means success, a non-empty one explains the refusal (the vendored
//! serde shim has no `Option` sugar, and a fixed shape keeps foreign
//! clients trivial).
//!
//! A client may instead send the [`WIRE_HELLO`] byte (`0xC1`) as its very
//! first byte, switching the connection to the fixed-layout binary
//! format in [`crate::wire`]. A JSON frame's first byte is the high byte
//! of a length capped at 1 MiB — always `0x00` — so the two protocols
//! are unambiguous without a handshake round trip.
//!
//! Every connection is pinned to an engine shard by its accept-order
//! connection id ([`EngineHandle::pinned`]), so a given connection's
//! requests always land on the same queue. One connection may pipeline
//! many requests; cross-connection concurrency is what actually fills
//! batches. This thread-per-connection server is the portable fallback;
//! on Linux the epoll reactor ([`crate::reactor`]) serves the same two
//! protocols without a thread per socket.

use crate::engine::{ControlResponse, EngineHandle, PinnedHandle, ServeError};
use crate::wire::{self, ResponseRec, WIRE_HELLO};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Refuse frames above this size; a control request is a few dozen
/// numbers, so anything near this is a protocol error, not a workload.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct WireRequest {
    id: u64,
    state: Vec<f64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct WireResponse {
    id: u64,
    control: Vec<f64>,
    fallback: bool,
    error: String,
}

/// Anything that can answer a control request — the in-process engine
/// handle or a TCP client. The load generator is written against this so
/// the same drill runs in-process and over the wire.
pub trait ControlClient {
    /// Computes the clipped control for `state`.
    ///
    /// # Errors
    ///
    /// Propagates the server-side [`ServeError`].
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError>;
}

impl ControlClient for EngineHandle {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.submit(state)
    }
}

impl ControlClient for PinnedHandle {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        self.submit(state)
    }
}

impl ControlClient for Box<dyn ControlClient + Send> {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        (**self).control(state)
    }
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    read_frame_after_len(stream, len_buf)
}

fn read_frame_after_len(stream: &mut TcpStream, len_buf: [u8; 4]) -> io::Result<Vec<u8>> {
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// A serving endpoint: accept loop plus one thread per connection, all
/// feeding shard-pinned handles of the shared engine.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, handle: EngineHandle) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("cocktail-serve-accept".into())
            .spawn(move || {
                let next_conn = AtomicU64::new(0);
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_id = next_conn.fetch_add(1, Ordering::Relaxed);
                    let pinned = handle.pinned(conn_id);
                    // connection threads are detached: they exit when the
                    // peer hangs up or the engine shuts down
                    let _ = std::thread::Builder::new()
                        .name("cocktail-serve-conn".into())
                        .spawn(move || serve_connection(stream, &pinned));
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// In-flight connections finish on their own.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // the accept loop only observes `stop` between connections; poke
        // it with a throwaway connect so it wakes up and exits
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_connection(mut stream: TcpStream, handle: &PinnedHandle) {
    // protocol sniff: 0xC1 switches to the binary wire format; anything
    // else is the first byte of a JSON frame length
    let mut first = [0u8; 1];
    if stream.read_exact(&mut first).is_err() {
        return;
    }
    if first[0] == WIRE_HELLO {
        serve_binary_connection(stream, handle);
    } else {
        serve_json_connection(stream, handle, first[0]);
    }
}

fn serve_json_connection(mut stream: TcpStream, handle: &PinnedHandle, first_len_byte: u8) {
    let mut sniffed = Some(first_len_byte);
    loop {
        let body = match sniffed.take() {
            Some(b0) => {
                let mut rest = [0u8; 3];
                if stream.read_exact(&mut rest).is_err() {
                    return;
                }
                read_frame_after_len(&mut stream, [b0, rest[0], rest[1], rest[2]])
            }
            None => read_frame(&mut stream),
        };
        let Ok(body) = body else {
            return; // peer hung up or sent garbage framing
        };
        let parsed = std::str::from_utf8(&body)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str::<WireRequest>(text).map_err(|e| e.to_string()));
        let response = match parsed {
            Ok(req) => {
                let (control, fallback, error) = match handle.submit(&req.state) {
                    Ok(resp) => (resp.control, resp.served_by_fallback, String::new()),
                    Err(e) => (Vec::new(), false, e.to_string()),
                };
                WireResponse {
                    id: req.id,
                    control,
                    fallback,
                    error,
                }
            }
            Err(e) => WireResponse {
                id: 0,
                control: Vec::new(),
                fallback: false,
                error: format!("unparseable request: {e}"),
            },
        };
        let Ok(encoded) = serde_json::to_string(&response) else {
            return;
        };
        if write_frame(&mut stream, encoded.as_bytes()).is_err() {
            return;
        }
    }
}

fn serve_binary_connection(mut stream: TcpStream, handle: &PinnedHandle) {
    let mut rbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut state: Vec<f64> = Vec::with_capacity(handle.state_dim());
    let mut chunk = [0u8; 4096];
    loop {
        let Ok(n) = stream.read(&mut chunk) else {
            return;
        };
        if n == 0 {
            return; // orderly hangup
        }
        rbuf.extend_from_slice(&chunk[..n]);
        wbuf.clear();
        let mut consumed = 0usize;
        loop {
            match wire::decode_request(&rbuf[consumed..], &mut state) {
                Ok(Some((id, used))) => {
                    consumed += used;
                    let rec = match handle.submit(&state) {
                        Ok(resp) => ResponseRec::ok(id, &resp.control, resp.served_by_fallback),
                        Err(e) => ResponseRec::err(id, wire::status_of_error(&e)),
                    };
                    wire::encode_response_into(&rec, &mut wbuf);
                }
                Ok(None) => break,
                Err(_) => return, // unrecoverable framing violation
            }
        }
        if consumed > 0 {
            rbuf.copy_within(consumed.., 0);
            rbuf.truncate(rbuf.len() - consumed);
        }
        if !wbuf.is_empty() && (stream.write_all(&wbuf).is_err() || stream.flush().is_err()) {
            return;
        }
    }
}

/// A blocking client speaking the framed-JSON protocol.
pub struct TcpClient {
    stream: TcpStream,
    next_id: u64,
}

impl TcpClient {
    /// Connects to a [`Server`].
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, next_id: 1 })
    }
}

impl ControlClient for TcpClient {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = WireRequest {
            id,
            state: state.to_vec(),
        };
        let encoded = serde_json::to_string(&request)
            .map_err(|e| ServeError::BadRequest(format!("encode request: {e}")))?;
        write_frame(&mut self.stream, encoded.as_bytes())
            .map_err(|e| ServeError::BadRequest(format!("send request: {e}")))?;
        let body = read_frame(&mut self.stream)
            .map_err(|e| ServeError::BadRequest(format!("read response: {e}")))?;
        let text = std::str::from_utf8(&body)
            .map_err(|e| ServeError::BadRequest(format!("non-UTF-8 response: {e}")))?;
        let response: WireResponse = serde_json::from_str(text)
            .map_err(|e| ServeError::BadRequest(format!("decode response: {e}")))?;
        if response.id != id {
            return Err(ServeError::BadRequest(format!(
                "response id {} != request id {id}",
                response.id
            )));
        }
        if response.error.is_empty() {
            Ok(ControlResponse {
                control: response.control,
                served_by_fallback: response.fallback,
            })
        } else if response.error.starts_with("queue full") {
            Err(ServeError::Backpressure { depth: 0 })
        } else if response.error.contains("non-finite controller output") {
            Err(ServeError::NonFiniteOutput)
        } else if response.error.contains("engine shut down") {
            Err(ServeError::Shutdown)
        } else {
            Err(ServeError::BadRequest(response.error))
        }
    }
}

/// A blocking client speaking the binary wire protocol (hello byte, then
/// fixed-layout frames). Its buffers are reused across requests, so a
/// steady-state request performs no client-side allocation either.
pub struct BinaryTcpClient {
    stream: TcpStream,
    next_id: u64,
    rbuf: Vec<u8>,
    frame: Vec<u8>,
    filled: usize,
}

impl BinaryTcpClient {
    /// Connects and sends the protocol hello byte.
    ///
    /// # Errors
    ///
    /// Propagates connect/write failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&[WIRE_HELLO])?;
        Ok(Self {
            stream,
            next_id: 1,
            rbuf: vec![0u8; 4096],
            frame: Vec::with_capacity(256),
            filled: 0,
        })
    }
}

impl ControlClient for BinaryTcpClient {
    fn control(&mut self, state: &[f64]) -> Result<ControlResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.frame.clear();
        wire::encode_request_into(id, state, &mut self.frame);
        self.stream
            .write_all(&self.frame)
            .and_then(|()| self.stream.flush())
            .map_err(|e| ServeError::BadRequest(format!("send request: {e}")))?;
        let mut rec = ResponseRec::err(0, wire::STATUS_BAD_REQUEST);
        loop {
            match wire::decode_response(&self.rbuf[..self.filled], &mut rec) {
                Ok(Some(used)) => {
                    self.rbuf.copy_within(used..self.filled, 0);
                    self.filled -= used;
                    break;
                }
                Ok(None) => {
                    if self.filled == self.rbuf.len() {
                        self.rbuf.resize(self.rbuf.len() * 2, 0);
                    }
                    let n = self
                        .stream
                        .read(&mut self.rbuf[self.filled..])
                        .map_err(|e| ServeError::BadRequest(format!("read response: {e}")))?;
                    if n == 0 {
                        return Err(ServeError::Shutdown);
                    }
                    self.filled += n;
                }
                Err(e) => return Err(ServeError::BadRequest(e.to_string())),
            }
        }
        if rec.id != id {
            return Err(ServeError::BadRequest(format!(
                "response id {} != request id {id}",
                rec.id
            )));
        }
        match wire::error_of_status(rec.status) {
            None => Ok(ControlResponse {
                control: rec.control().to_vec(),
                served_by_fallback: rec.status == wire::STATUS_OK_FALLBACK,
            }),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use cocktail_math::vector;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::NullSink;

    fn test_engine() -> Engine {
        test_engine_sharded(1)
    }

    fn test_engine_sharded(shards: usize) -> Engine {
        let net = MlpBuilder::new(2)
            .hidden(6, Activation::Tanh)
            .output(1, Activation::Identity)
            .seed(11)
            .build();
        Engine::from_parts(
            net,
            vec![1.5],
            vec![-4.0],
            vec![4.0],
            EngineConfig {
                shards,
                ..EngineConfig::default()
            },
            None,
            std::sync::Arc::new(NullSink),
        )
        .expect("engine starts")
    }

    #[test]
    fn tcp_round_trip_matches_in_process_answer() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        let state = [0.2, -0.7];
        let over_wire = client.control(&state).expect("served");
        let in_process = engine.handle().submit(&state).expect("served");
        assert_eq!(over_wire, in_process);
        server.shutdown();
    }

    #[test]
    fn binary_round_trip_matches_json_bit_for_bit() {
        let engine = test_engine_sharded(2);
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut json = TcpClient::connect(server.local_addr()).expect("connect");
        let mut binary = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        for i in 0..32 {
            let s = [f64::from(i) * 0.04 - 0.6, 0.3];
            let via_json = json.control(&s).expect("served");
            let via_binary = binary.control(&s).expect("served");
            assert_eq!(via_json, via_binary, "wire formats must agree bitwise");
        }
        server.shutdown();
    }

    #[test]
    fn binary_errors_travel_as_status_codes() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = BinaryTcpClient::connect(server.local_addr()).expect("connect");
        let err = client.control(&[1.0, 2.0, 3.0]).expect_err("wrong dim");
        assert!(matches!(err, ServeError::BadRequest(_)));
        // the connection survives a refused request
        assert!(client.control(&[0.0, 0.0]).is_ok());
        server.shutdown();
    }

    #[test]
    fn malformed_state_travels_back_as_an_error() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        let err = client.control(&[1.0, 2.0, 3.0]).expect_err("wrong dim");
        assert!(matches!(err, ServeError::BadRequest(_)));
        // the connection survives a refused request
        assert!(client.control(&[0.0, 0.0]).is_ok());
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_keep_their_ids_straight() {
        let engine = test_engine();
        let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
        let mut client = TcpClient::connect(server.local_addr()).expect("connect");
        for i in 0..20 {
            let s = [f64::from(i) * 0.05, -0.1];
            let got = client.control(&s).expect("served");
            let raw = engine.handle().submit(&s).expect("served");
            assert_eq!(got, raw);
            assert_eq!(
                got.control,
                vector::clip(&got.control, &[-4.0], &[4.0]),
                "wire output respects the clip envelope"
            );
        }
        server.shutdown();
    }
}
