//! The servable artifact: a versioned, self-describing controller bundle.
//!
//! A [`ControllerBundle`] is the only thing the serving runtime accepts: it
//! packages the student network as a [`ControllerSpec`] together with the
//! operating envelope the pipeline certified it for (input box, actuator
//! clip range), the measured Lipschitz certificate, the analysis findings
//! at export time, and provenance (seed, config hash, crate version).
//!
//! The format is **strict JSON**: a bundle containing any non-finite
//! number is refused at save time (where the offending field can still be
//! named) and again at load time (a tampered file must not smuggle a bare
//! `NaN` literal past the vendored parser, which accepts them). Writes use
//! the same atomic fsync'd temp-file-then-rename protocol as the pipeline
//! checkpoints, so a crash mid-export never leaves a torn bundle.

use cocktail_analysis::{AnalysisReport, ControllerSpec, Severity};
use cocktail_core::SystemId;
use cocktail_math::BoxRegion;
use cocktail_nn::{FastTierCert, Mlp};
use cocktail_obs::{NullSink, Telemetry};
use cocktail_verify::{certify_controller, default_params, SafetyCert, SafetyParams};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Format version of [`ControllerBundle`]; bump on any shape change.
///
/// Version history: 1 — initial format; 2 — adds the optional `fast_tier`
/// quantization/approximation error certificate; 3 — adds the optional
/// `safety` formal safety certificate (Bernstein + reachability +
/// invariant set). Version-2 bundles still load and validate, but the
/// admission gate refuses them by default as uncertified (see
/// `AdmissionConfig::allow_uncertified`).
pub const BUNDLE_VERSION: u32 = 3;

/// Oldest bundle format [`ControllerBundle::validate`] still accepts.
pub const OLDEST_READABLE_VERSION: u32 = 2;

/// Why a bundle could not be packaged, saved, or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// Filesystem failure; `path` is the bundle path, `detail` the cause.
    Io {
        /// The bundle path involved.
        path: PathBuf,
        /// Human-readable cause.
        detail: String,
    },
    /// The file parsed but is not a valid bundle (wrong version, wrong
    /// shape, inconsistent dimensions).
    Format(String),
    /// A numeric field holds NaN or an infinity.
    NonFinite(String),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io { path, detail } => {
                write!(f, "bundle I/O at {}: {detail}", path.display())
            }
            BundleError::Format(msg) => write!(f, "malformed bundle: {msg}"),
            BundleError::NonFinite(msg) => write!(f, "non-finite bundle field: {msg}"),
        }
    }
}

impl std::error::Error for BundleError {}

/// Where a bundle came from: enough to reproduce or at least identify the
/// training run that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Pipeline seed of the producing run.
    pub seed: u64,
    /// FNV-1a hash of the producing configuration (see [`fnv1a_64`]).
    pub config_hash: u64,
    /// `CARGO_PKG_VERSION` of the exporting crate.
    pub crate_version: String,
}

/// One analysis finding, in owned serializable form (the analyzer's
/// [`cocktail_analysis::Diagnostic`] uses `&'static str` codes and cannot
/// derive `Deserialize`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BundleFinding {
    /// `"error"`, `"warning"` or `"info"`.
    pub severity: String,
    /// The pass that produced the finding, e.g. `hygiene`.
    pub pass: String,
    /// Stable kebab-case identifier, e.g. `nonfinite-weight`.
    pub code: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Converts a full analyzer report into owned findings.
pub fn findings_of(report: &AnalysisReport) -> Vec<BundleFinding> {
    report
        .diagnostics()
        .iter()
        .map(|d| BundleFinding {
            severity: d.severity.to_string(),
            pass: d.pass.to_string(),
            code: d.code.to_string(),
            message: d.message.clone(),
        })
        .collect()
}

/// 64-bit FNV-1a hash, used to fingerprint the producing configuration.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deployable controller artifact.
///
/// See the module docs for the format contract. Field order is part of
/// the (pretty-printed JSON) format. `Deserialize` is hand-written below:
/// version-2 files predate the `safety` field entirely, so a missing key
/// must read as `None` while every other field stays required.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ControllerBundle {
    /// Must equal [`BUNDLE_VERSION`].
    pub version: u32,
    /// The plant the controller was trained and certified for.
    pub system: SystemId,
    /// The controller itself (the serving engine requires the `Mlp`
    /// family; other families are rejected at admission).
    pub spec: ControllerSpec,
    /// The input box the Lipschitz claim was measured over (normally the
    /// plant's verification domain).
    pub input_domain: BoxRegion,
    /// Lower actuator limits `U_inf`, one per control dimension.
    pub u_inf: Vec<f64>,
    /// Upper actuator limits `U_sup`, one per control dimension.
    pub u_sup: Vec<f64>,
    /// The certified Lipschitz bound measured at export
    /// ([`cocktail_analysis::certified_bound`]); admission re-derives it
    /// and refuses on mismatch.
    pub lipschitz_claim: f64,
    /// Analyzer findings at export time (informational; admission re-runs
    /// the analyzer rather than trusting these).
    pub analysis: Vec<BundleFinding>,
    /// Certified output-error bounds of the reduced-precision serving
    /// kernels (fast-tanh and f32 tiers) over `input_domain`, derived at
    /// export with interval arithmetic. `None` when the controller uses
    /// activations the fast tiers do not cover; admission re-derives the
    /// certificate from the shipped weights and refuses on mismatch.
    pub fast_tier: Option<FastTierCert>,
    /// The formal safety certificate: Bernstein enclosure, closed-loop
    /// reachability and control-invariant set, derived at export from the
    /// shipped weights, the plant spec and the embedded parameters.
    /// Admission re-derives it bit-for-bit and refuses on any disagreement;
    /// a bundle without one (version-2 formats, or a student whose
    /// certification exhausted its budget — the paper's `κ_D` failure
    /// mode) is refused as *uncertified* unless explicitly allowed.
    /// Absent (`None`) when deserializing version-2 files.
    pub safety: Option<SafetyCert>,
    /// Who made this bundle.
    pub provenance: Provenance,
}

impl Deserialize for ControllerBundle {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Map(fields) = v else {
            return Err(serde::DeError::custom(format!(
                "expected map for `ControllerBundle`, got {}",
                v.kind()
            )));
        };
        fn req<T: Deserialize>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::DeError> {
            T::from_value(
                serde::__field(fields, name)
                    .map_err(|e| serde::DeError::custom(format!("in `ControllerBundle`: {e}")))?,
            )
        }
        // `safety` arrived with format version 3; in older files the key is
        // simply absent, which must read as "no certificate", not an error.
        let safety = match fields.iter().find(|(k, _)| k == "safety") {
            Some((_, v)) => Option::<SafetyCert>::from_value(v)?,
            None => None,
        };
        Ok(ControllerBundle {
            version: req(fields, "version")?,
            system: req(fields, "system")?,
            spec: req(fields, "spec")?,
            input_domain: req(fields, "input_domain")?,
            u_inf: req(fields, "u_inf")?,
            u_sup: req(fields, "u_sup")?,
            lipschitz_claim: req(fields, "lipschitz_claim")?,
            analysis: req(fields, "analysis")?,
            fast_tier: req(fields, "fast_tier")?,
            safety,
            provenance: req(fields, "provenance")?,
        })
    }
}

impl ControllerBundle {
    /// Packages a trained student `u = scale ⊙ net(s)` for `system` with
    /// the canonical verification budgets ([`default_params`]) and no
    /// telemetry. See [`Self::package_with`].
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Format`] when the student fails the export
    /// gate, [`BundleError::NonFinite`] when any parameter or bound is
    /// non-finite.
    pub fn package(
        system: SystemId,
        net: Mlp,
        scale: Vec<f64>,
        provenance: Provenance,
    ) -> Result<Self, BundleError> {
        Self::package_with(system, net, scale, provenance, None, &NullSink)
    }

    /// Packages a trained student `u = scale ⊙ net(s)` for `system`.
    ///
    /// Runs the static analyzer and the Lipschitz certification once at
    /// export: a student the linter rejects at error level, or one without
    /// a product-form Lipschitz bound, is refused here — shipping an
    /// artifact that admission is guaranteed to bounce helps nobody. Then
    /// runs the full formal safety loop (Bernstein certificate, closed-loop
    /// reachability, control-invariant set) under `safety_params` (the
    /// plant's [`default_params`] when `None`) and embeds the resulting
    /// [`SafetyCert`]. A student whose certification exhausts its budget —
    /// the paper's `κ_D` failure mode — still packages, but without a
    /// certificate: admission will refuse it as uncertified unless the
    /// operator explicitly allows uncertified bundles.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Format`] when the student fails the export
    /// gate, [`BundleError::NonFinite`] when any parameter or bound is
    /// non-finite.
    pub fn package_with(
        system: SystemId,
        net: Mlp,
        scale: Vec<f64>,
        provenance: Provenance,
        safety_params: Option<&SafetyParams>,
        tel: &dyn Telemetry,
    ) -> Result<Self, BundleError> {
        let sys = system.dynamics();
        let spec = ControllerSpec::from_network(net, scale);
        let report = cocktail_analysis::Analyzer::new(sys.clone()).analyze(&spec);
        if report.has_errors() {
            return Err(BundleError::Format(format!(
                "student fails the export lint gate ({}):\n{}",
                report.summary(),
                report.render()
            )));
        }
        let claim = cocktail_analysis::certified_bound(&spec).ok_or_else(|| {
            BundleError::Format(format!(
                "no product-form Lipschitz bound for a {} controller; only \
                 certifiable students are servable",
                spec.kind()
            ))
        })?;
        let (u_inf, u_sup) = sys.control_bounds();
        let input_domain = sys.verification_domain();
        let fast_tier = match &spec {
            ControllerSpec::Mlp { net, .. } => cocktail_nn::certify_fast_tier(net, &input_domain),
            _ => None,
        };
        let safety = match &spec {
            ControllerSpec::Mlp { net, scale } => {
                let defaults;
                let params = match safety_params {
                    Some(p) => p,
                    None => {
                        defaults = default_params(sys.as_ref());
                        &defaults
                    }
                };
                // a budget blow-up is not an export error: the bundle ships
                // uncertified and the admission gate decides its fate
                certify_controller(
                    sys.as_ref(),
                    net,
                    scale,
                    params,
                    cocktail_math::parallel::default_workers(),
                    tel,
                )
                .ok()
            }
            _ => None,
        };
        let bundle = Self {
            version: BUNDLE_VERSION,
            system,
            spec,
            input_domain,
            u_inf,
            u_sup,
            lipschitz_claim: claim,
            analysis: findings_of(&report),
            fast_tier,
            safety,
            provenance,
        };
        bundle.validate()?;
        Ok(bundle)
    }

    /// Structural and finiteness validation; load and save both call this
    /// so the strict-JSON contract holds in both directions.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Format`] on shape problems and
    /// [`BundleError::NonFinite`] on NaN / infinity anywhere.
    pub fn validate(&self) -> Result<(), BundleError> {
        if !(OLDEST_READABLE_VERSION..=BUNDLE_VERSION).contains(&self.version) {
            return Err(BundleError::Format(format!(
                "bundle version {} outside the supported range \
                 {OLDEST_READABLE_VERSION}..={BUNDLE_VERSION}",
                self.version
            )));
        }
        if self.version < 3 && self.safety.is_some() {
            return Err(BundleError::Format(format!(
                "version {} predates safety certificates yet carries one",
                self.version
            )));
        }
        let state_dim = self
            .spec
            .state_dim()
            .ok_or_else(|| BundleError::Format("controller has no state dimension".into()))?;
        let control_dim = self
            .spec
            .control_dim()
            .ok_or_else(|| BundleError::Format("controller has no control dimension".into()))?;
        if self.input_domain.dim() != state_dim {
            return Err(BundleError::Format(format!(
                "input domain dimension {} != controller state dimension {state_dim}",
                self.input_domain.dim()
            )));
        }
        if self.u_inf.len() != control_dim || self.u_sup.len() != control_dim {
            return Err(BundleError::Format(format!(
                "clip range arity ({}, {}) != control dimension {control_dim}",
                self.u_inf.len(),
                self.u_sup.len()
            )));
        }
        for (i, (lo, hi)) in self.u_inf.iter().zip(&self.u_sup).enumerate() {
            if !(lo.is_finite() && hi.is_finite()) {
                return Err(BundleError::NonFinite(format!("clip range component {i}")));
            }
            if lo > hi {
                return Err(BundleError::Format(format!(
                    "clip range component {i} inverted: [{lo}, {hi}]"
                )));
            }
        }
        for (i, iv) in self.input_domain.intervals().iter().enumerate() {
            if !(iv.lo().is_finite() && iv.hi().is_finite()) {
                return Err(BundleError::NonFinite(format!(
                    "input domain dimension {i}"
                )));
            }
        }
        if !self.lipschitz_claim.is_finite() || self.lipschitz_claim < 0.0 {
            return Err(BundleError::NonFinite(format!(
                "lipschitz claim {}",
                self.lipschitz_claim
            )));
        }
        if let Some(cert) = &self.fast_tier {
            let scalars = [cert.fast_tanh_eps, cert.fast_tanh_f32_eps];
            let rows = cert
                .fast_tanh_output_error
                .iter()
                .chain(&cert.f32_output_error);
            if scalars
                .iter()
                .chain(rows)
                .any(|v| !v.is_finite() || *v < 0.0)
            {
                return Err(BundleError::NonFinite("fast tier certificate".into()));
            }
            if cert.fast_tanh_output_error.len() != control_dim
                || cert.f32_output_error.len() != control_dim
            {
                return Err(BundleError::Format(format!(
                    "fast tier certificate arity ({}, {}) != control dimension {control_dim}",
                    cert.fast_tanh_output_error.len(),
                    cert.f32_output_error.len()
                )));
            }
        }
        if let Some(cert) = &self.safety {
            validate_safety_cert(cert, state_dim)?;
        }
        spec_params_finite(&self.spec)?;
        Ok(())
    }

    /// The network and scale of a servable (`Mlp` family) bundle.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Format`] for non-neural controller specs.
    pub fn network(&self) -> Result<(&Mlp, &[f64]), BundleError> {
        match &self.spec {
            ControllerSpec::Mlp { net, scale } => Ok((net, scale)),
            other => Err(BundleError::Format(format!(
                "the serving engine batches Mlp controllers only, got a {} spec",
                other.kind()
            ))),
        }
    }

    /// Error-level findings recorded at export time.
    pub fn recorded_errors(&self) -> usize {
        self.analysis
            .iter()
            .filter(|f| f.severity == Severity::Error.to_string())
            .count()
    }

    /// Atomically and durably writes the bundle as pretty-printed JSON.
    ///
    /// Same protocol as the pipeline checkpoints: write a temp file in the
    /// destination directory, fsync it, rename into place, fsync the
    /// directory (unix), so the file on disk is always either absent or a
    /// complete bundle.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::NonFinite`] / [`BundleError::Format`] when
    /// the bundle fails [`Self::validate`], [`BundleError::Io`] on any
    /// filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), BundleError> {
        use std::io::Write;

        self.validate()?;
        let failed = |detail: String| BundleError::Io {
            path: path.to_path_buf(),
            detail,
        };
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        std::fs::create_dir_all(&dir).map_err(|e| failed(format!("create dir: {e}")))?;
        let json =
            serde_json::to_string_pretty(self).map_err(|e| failed(format!("serialize: {e}")))?;
        let file_name = path
            .file_name()
            .ok_or_else(|| failed("path has no file name".into()))?
            .to_string_lossy()
            .into_owned();
        let tmp = dir.join(format!("{file_name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| failed(format!("create temp file: {e}")))?;
            f.write_all(json.as_bytes())
                .map_err(|e| failed(format!("write temp file: {e}")))?;
            // data must be durable before the rename publishes the name
            f.sync_all()
                .map_err(|e| failed(format!("fsync temp file: {e}")))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| failed(format!("rename into place: {e}")))?;
        #[cfg(unix)]
        {
            let d = std::fs::File::open(&dir).map_err(|e| failed(format!("open dir: {e}")))?;
            d.sync_all()
                .map_err(|e| failed(format!("fsync dir: {e}")))?;
        }
        Ok(())
    }

    /// Loads and validates a bundle.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Io`] when the file cannot be read,
    /// [`BundleError::Format`] / [`BundleError::NonFinite`] when it is not
    /// a valid strict-JSON bundle.
    pub fn load(path: &Path) -> Result<Self, BundleError> {
        let text = std::fs::read_to_string(path).map_err(|e| BundleError::Io {
            path: path.to_path_buf(),
            detail: format!("read: {e}"),
        })?;
        let bundle: Self = serde_json::from_str(&text)
            .map_err(|e| BundleError::Format(format!("parse {}: {e}", path.display())))?;
        bundle.validate()?;
        Ok(bundle)
    }
}

/// Structural/finiteness checks of a shipped safety certificate. The
/// semantic half (does the claim re-derive?) belongs to the admission
/// gate; here we only refuse shapes that could never be valid, so the
/// strict-JSON contract extends to the new section.
fn validate_safety_cert(cert: &SafetyCert, state_dim: usize) -> Result<(), BundleError> {
    for (name, v) in [
        ("safety lipschitz", cert.lipschitz),
        ("safety epsilon", cert.epsilon),
        ("safety verify_ms", cert.verify_ms),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(BundleError::NonFinite(format!("{name} {v}")));
        }
    }
    for (name, b) in [
        ("safety reach hull", &cert.reach_final_hull),
        ("safety initial set", &cert.params.initial_set),
    ] {
        if b.dim() != state_dim {
            return Err(BundleError::Format(format!(
                "{name} dimension {} != controller state dimension {state_dim}",
                b.dim()
            )));
        }
        for (i, iv) in b.intervals().iter().enumerate() {
            if !(iv.lo().is_finite() && iv.hi().is_finite()) {
                return Err(BundleError::NonFinite(format!("{name} dimension {i}")));
            }
        }
    }
    let c = &cert.params.certificate;
    if !(c.tolerance.is_finite() && c.tolerance > 0.0) {
        return Err(BundleError::Format(format!(
            "safety certificate tolerance {} is not a positive finite",
            c.tolerance
        )));
    }
    if !(cert.params.reach.split_width.is_finite() && cert.params.reach.split_width > 0.0) {
        return Err(BundleError::Format(format!(
            "safety reach split width {} is not a positive finite",
            cert.params.reach.split_width
        )));
    }
    if cert.invariant_alive > cert.invariant_cells {
        return Err(BundleError::Format(format!(
            "safety invariant set claims {} alive cells out of {}",
            cert.invariant_alive, cert.invariant_cells
        )));
    }
    Ok(())
}

/// Rejects non-finite parameters anywhere in a spec tree. The vendored
/// JSON parser accepts bare `NaN` / `Infinity` literals, so "the file
/// parsed" is not the same as "the file is strict JSON" — this is the
/// strictness half the parser does not give us.
fn spec_params_finite(spec: &ControllerSpec) -> Result<(), BundleError> {
    for component in spec.components() {
        match component {
            cocktail_analysis::Component::Net { path, net, scale } => {
                for (i, layer) in net.layers().iter().enumerate() {
                    let finite = layer.weights().as_slice().iter().all(|v| v.is_finite())
                        && layer.biases().iter().all(|v| v.is_finite());
                    if !finite {
                        return Err(BundleError::NonFinite(format!("{path}: layer {i}")));
                    }
                }
                if let Some(scale) = scale {
                    if !scale.iter().all(|v| v.is_finite()) {
                        return Err(BundleError::NonFinite(format!("{path}: scale")));
                    }
                }
            }
            cocktail_analysis::Component::Gain { path, gain, bias } => {
                let finite = gain.as_slice().iter().all(|v| v.is_finite())
                    && bias.iter().all(|v| v.is_finite());
                if !finite {
                    return Err(BundleError::NonFinite(path));
                }
            }
        }
    }
    Ok(())
}

/// Shared fixtures for the crate's unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::{fnv1a_64, ControllerBundle, Provenance};
    use cocktail_core::SystemId;
    use cocktail_nn::{Activation, Mlp, MlpBuilder};
    use cocktail_obs::NullSink;
    use cocktail_verify::{fast_params, SafetyParams};
    use std::sync::OnceLock;

    /// A small healthy student for the oscillator plant.
    pub(crate) fn student() -> Mlp {
        MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(11)
            .build()
    }

    /// Matching provenance stamp.
    pub(crate) fn provenance() -> Provenance {
        Provenance {
            seed: 7,
            config_hash: fnv1a_64(b"test-config"),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// The coarse verification budgets the test fixtures embed: admission
    /// re-derives with the *shipped* parameters, so cheap budgets keep the
    /// unit suite fast without weakening the re-derivation contract.
    pub(crate) fn test_safety_params() -> SafetyParams {
        fast_params(SystemId::Oscillator.dynamics().as_ref())
    }

    /// A packaged, admission-clean oscillator bundle (memoized: packaging
    /// runs the full certification loop once per test binary).
    #[allow(
        clippy::expect_used,
        reason = "test fixture; a packaging failure here is a test failure"
    )]
    pub(crate) fn healthy_bundle() -> ControllerBundle {
        static CELL: OnceLock<ControllerBundle> = OnceLock::new();
        CELL.get_or_init(|| {
            ControllerBundle::package_with(
                SystemId::Oscillator,
                student(),
                vec![20.0],
                provenance(),
                Some(&test_safety_params()),
                &NullSink,
            )
            .expect("healthy student packages")
        })
        .clone()
    }

    /// The same artifact in the legacy version-2 format: no safety
    /// certificate, pre-certification version stamp.
    pub(crate) fn v2_bundle() -> ControllerBundle {
        let mut b = healthy_bundle();
        b.version = 2;
        b.safety = None;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{healthy_bundle as bundle, provenance, student};
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cocktail-serve-bundle-{tag}-{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn package_records_claim_and_envelope() {
        let b = bundle();
        assert_eq!(b.version, BUNDLE_VERSION);
        assert!(b.lipschitz_claim > 0.0);
        assert_eq!(b.recorded_errors(), 0);
        let sys = SystemId::Oscillator.dynamics();
        assert_eq!((b.u_inf.clone(), b.u_sup.clone()), sys.control_bounds());
        assert_eq!(b.input_domain, sys.verification_domain());
        let (net, scale) = b.network().expect("neural spec");
        assert_eq!(net.input_dim(), 2);
        assert_eq!(scale, &[20.0]);
    }

    #[test]
    fn package_embeds_a_fast_tier_certificate_for_tanh_students() {
        let b = bundle();
        let cert = b.fast_tier.as_ref().expect("tanh student is certifiable");
        assert_eq!(cert.fast_tanh_output_error.len(), 1);
        assert_eq!(cert.f32_output_error.len(), 1);
        assert!(cert.fast_tanh_output_error[0] > 0.0);
        assert!(cert.f32_output_error[0] > 0.0);
        let (net, _) = b.network().expect("neural spec");
        let fresh =
            cocktail_nn::certify_fast_tier(net, &b.input_domain).expect("re-derivation succeeds");
        assert!(fresh.matches(cert, 1e-9), "re-derivation is deterministic");
    }

    #[test]
    fn validate_refuses_a_non_finite_fast_tier_cert() {
        let mut b = bundle();
        if let Some(cert) = b.fast_tier.as_mut() {
            cert.f32_output_error[0] = f64::NAN;
        }
        let err = b.validate().expect_err("NaN cert refused");
        assert!(matches!(err, BundleError::NonFinite(_)), "{err}");
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let b = bundle();
        let path = temp_path("roundtrip");
        b.save(&path).expect("save succeeds");
        let back = ControllerBundle::load(&path).expect("load succeeds");
        assert_eq!(back, b);
        assert!(
            !path.with_extension("json.tmp").exists(),
            "temp file renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn package_refuses_nan_student() {
        let mut net = student();
        net.layers_mut()[0].weights_mut()[(0, 0)] = f64::NAN;
        let err = ControllerBundle::package(SystemId::Oscillator, net, vec![20.0], provenance())
            .expect_err("NaN student refused");
        assert!(matches!(err, BundleError::Format(_)), "{err}");
    }

    #[test]
    fn save_refuses_in_memory_corruption() {
        let mut b = bundle();
        if let ControllerSpec::Mlp { net, .. } = &mut b.spec {
            net.layers_mut()[0].weights_mut()[(0, 0)] = f64::INFINITY;
        }
        let err = b.save(&temp_path("corrupt")).expect_err("corrupt refused");
        assert!(matches!(err, BundleError::NonFinite(_)), "{err}");
    }

    #[test]
    fn load_refuses_version_skew_and_nan_literals() {
        let b = bundle();
        let path = temp_path("skew");
        b.save(&path).expect("save succeeds");
        let text = std::fs::read_to_string(&path).expect("readable");

        let skewed = text.replacen("\"version\": 3", "\"version\": 99", 1);
        std::fs::write(&path, skewed).expect("writable");
        let err = ControllerBundle::load(&path).expect_err("version skew refused");
        assert!(err.to_string().contains("version 99"), "{err}");

        // a bare NaN literal parses in the vendored parser but must not
        // survive strict-JSON validation
        let poisoned: String = text
            .lines()
            .map(|l| {
                if l.contains("\"lipschitz_claim\"") {
                    "  \"lipschitz_claim\": NaN,".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(poisoned.contains("NaN"), "substitution must hit");
        std::fs::write(&path, poisoned).expect("writable");
        let err = ControllerBundle::load(&path).expect_err("NaN literal refused");
        assert!(matches!(err, BundleError::NonFinite(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn package_embeds_a_safety_cert_that_rederives_bit_for_bit() {
        let b = bundle();
        let cert = b.safety.as_ref().expect("oscillator student certifies");
        let sys = b.system.dynamics();
        let (net, scale) = b.network().expect("neural spec");
        let fresh = certify_controller(
            sys.as_ref(),
            net,
            scale,
            &cert.params,
            cocktail_math::parallel::default_workers(),
            &NullSink,
        )
        .expect("re-derivation succeeds");
        assert!(
            cert.matches(&fresh, 0.0),
            "shipped and re-derived certs must agree exactly: {:?}",
            cert.diff(&fresh, 0.0)
        );
    }

    #[test]
    fn v2_files_without_a_safety_key_load_as_uncertified() {
        let b = bundle();
        let path = temp_path("v2-compat");
        b.save(&path).expect("save succeeds");
        let text = std::fs::read_to_string(&path).expect("readable");

        // rebuild the file as a version-2 artifact: older stamp, no
        // `safety` key at all (not even `null`)
        let mut v2_lines: Vec<String> = Vec::new();
        let mut in_safety = false;
        let mut depth = 0i32;
        for line in text.lines() {
            if line.trim_start().starts_with("\"safety\":") {
                in_safety = true;
                depth = 0;
            }
            if in_safety {
                depth += line.matches(['{', '[']).count() as i32;
                depth -= line.matches(['}', ']']).count() as i32;
                if depth <= 0 {
                    in_safety = false;
                }
                continue;
            }
            v2_lines.push(line.replacen("\"version\": 3", "\"version\": 2", 1));
        }
        let v2_text = v2_lines.join("\n");
        assert!(!v2_text.contains("\"safety\""), "key must be gone");
        std::fs::write(&path, v2_text).expect("writable");

        let back = ControllerBundle::load(&path).expect("v2 file still loads");
        assert_eq!(back.version, 2);
        assert_eq!(back.safety, None);
        assert_eq!(back.spec, b.spec, "payload fields survive the downgrade");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_refuses_a_v2_bundle_that_claims_a_safety_cert() {
        let mut b = bundle();
        assert!(b.safety.is_some());
        b.version = 2;
        let err = b.validate().expect_err("v2 with cert refused");
        assert!(matches!(err, BundleError::Format(_)), "{err}");
    }

    #[test]
    fn validate_refuses_corrupt_safety_certs() {
        // non-finite wall-clock
        let mut b = bundle();
        if let Some(cert) = b.safety.as_mut() {
            cert.verify_ms = f64::NAN;
        }
        let err = b.validate().expect_err("NaN verify_ms refused");
        assert!(matches!(err, BundleError::NonFinite(_)), "{err}");

        // hull dimension disagrees with the plant
        let mut b = bundle();
        if let Some(cert) = b.safety.as_mut() {
            cert.reach_final_hull = BoxRegion::cube(3, -1.0, 1.0);
        }
        let err = b.validate().expect_err("wrong hull dim refused");
        assert!(matches!(err, BundleError::Format(_)), "{err}");

        // impossible invariant-set population
        let mut b = bundle();
        if let Some(cert) = b.safety.as_mut() {
            cert.invariant_alive = cert.invariant_cells + 1;
        }
        let err = b.validate().expect_err("alive > cells refused");
        assert!(matches!(err, BundleError::Format(_)), "{err}");
    }

    #[test]
    fn fnv_hash_is_stable() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), fnv1a_64(b"a"));
        assert_ne!(fnv1a_64(b"a"), fnv1a_64(b"b"));
    }
}
