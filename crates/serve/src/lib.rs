//! `cocktail-serve`: a controller-serving runtime for distilled students.
//!
//! The pipeline crates end at a trained, verified student network. This
//! crate is the deployment story for that artifact, in four layers:
//!
//! 1. **Bundle** ([`bundle`]): a versioned, self-describing JSON artifact
//!    packaging the student network with its operating envelope (input
//!    domain, control clip range), its measured Lipschitz certificate,
//!    the static-analysis findings it shipped with, and provenance (seed,
//!    config hash, crate version). Writes are atomic and fsync'd.
//! 2. **Admission** ([`admission`]): nothing serves on trust. Loading a
//!    bundle re-runs the `cocktail-analysis` gate against the *current*
//!    linter and re-derives the Lipschitz bound; a stale claim, a Deny
//!    finding, or a certificate violation refuses admission.
//! 3. **Engine** ([`engine`]): a micro-batching scheduler that coalesces
//!    concurrent requests into single batched forwards, clips every
//!    output to the bundle envelope, answers non-finite outputs from a
//!    fallback expert, and rejects (never blocks) under overload.
//! 4. **Transport + harness** ([`transport`], [`loadgen`]): a
//!    length-prefixed JSON-over-TCP server, matching client, and a
//!    deterministic load generator that doubles as the correctness
//!    oracle — every served output is checked bit-for-bit against the
//!    per-sample reference path.
//!
//! The crate is std-only, like the rest of the workspace.

pub mod admission;
pub mod bundle;
pub mod engine;
pub mod loadgen;
pub mod transport;

pub use admission::{admit, admit_with, AdmissionConfig, AdmissionError, Admitted};
pub use bundle::{BundleError, ControllerBundle, Provenance, BUNDLE_VERSION};
pub use engine::{ControlResponse, Engine, EngineConfig, EngineHandle, ServeError, Ticket};
pub use loadgen::{LoadGenConfig, LoadReport};
pub use transport::{ControlClient, Server, TcpClient};
