//! `cocktail-serve`: a controller-serving runtime for distilled students.
//!
//! The pipeline crates end at a trained, verified student network. This
//! crate is the deployment story for that artifact, in five layers:
//!
//! 1. **Bundle** ([`bundle`]): a versioned, self-describing JSON artifact
//!    packaging the student network with its operating envelope (input
//!    domain, control clip range), its measured Lipschitz certificate,
//!    the static-analysis findings it shipped with, and provenance (seed,
//!    config hash, crate version). Writes are atomic and fsync'd.
//! 2. **Admission** ([`admission`]): nothing serves on trust. Loading a
//!    bundle re-runs the `cocktail-analysis` gate against the *current*
//!    linter and re-derives the Lipschitz bound; a stale claim, a Deny
//!    finding, or a certificate violation refuses admission.
//! 3. **Engine** ([`engine`]): a sharded micro-batching scheduler — N
//!    independent queue+worker shards, deterministic connection-to-shard
//!    hashing, reusable batch scratch (zero steady-state allocations on
//!    the binary reply path) — that coalesces concurrent requests into
//!    batched forwards, clips every output to the bundle envelope,
//!    answers non-finite outputs from a fallback expert, and rejects
//!    (never blocks) under overload.
//! 4. **Wire + transport** ([`wire`], [`transport`], [`reactor`]): a
//!    compact fixed-layout binary frame format negotiated by a hello
//!    byte alongside the original length-prefixed JSON; served either by
//!    the portable thread-per-connection server or (on Linux) by an
//!    epoll-backed nonblocking reactor that multiplexes every connection
//!    on one thread.
//! 5. **Harness** ([`loadgen`]): a deterministic load generator that
//!    doubles as the correctness oracle — every served output is checked
//!    bit-for-bit against the per-sample reference path, on both wire
//!    formats, with p50/p99/p999 latency accounting.
//! 6. **Rollout** ([`rollout`], [`replay`]): fleet operations — a
//!    propose/canary/promote/rollback state machine over an
//!    epoch-versioned model set, deterministic canary routing by request
//!    id, shadow comparison with divergence histograms and auto-rollback
//!    budgets, a served-output drift detector feeding the supervisor's
//!    retraining loop, and offline shadow replay of recorded request
//!    streams.
//!
//! The crate is std-only, like the rest of the workspace.

pub mod admission;
pub mod bundle;
pub mod engine;
pub mod loadgen;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod replay;
pub mod rollout;
pub mod transport;
pub mod wire;

pub use admission::{
    admit, admit_candidate, admit_with, AdmissionConfig, AdmissionError, Admitted,
};
pub use bundle::{
    BundleError, ControllerBundle, Provenance, BUNDLE_VERSION, OLDEST_READABLE_VERSION,
};
pub use engine::{
    ControlResponse, Engine, EngineConfig, EngineHandle, Outbox, PinnedHandle, ServeError,
    ServeTier, Ticket,
};
pub use loadgen::{LoadGenConfig, LoadReport, WireProtocol};
#[cfg(target_os = "linux")]
pub use reactor::{ReactorConfig, ReactorServer};
pub use replay::{
    decode_state_bits, encode_state_bits, load_recorded, requests_of_events, shadow_replay,
    RecordedRequest, ReplayReport,
};
pub use rollout::{
    routes_to_canary, total_variation, DivergenceHistogram, DriftConfig, DriftDetector,
    DriftReport, RolloutAction, RolloutBudget, RolloutConfig, RolloutError, RolloutEvent,
    RolloutStatus,
};
pub use transport::{BinaryTcpClient, ClientConfig, ControlClient, Server, TcpClient};
