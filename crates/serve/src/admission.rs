//! The admission gate: nothing serves traffic until it passes here.
//!
//! Admission re-derives everything the bundle claims instead of trusting
//! it: the static analyzer runs afresh against the target plant (under the
//! usual Off/Warn/Deny [`PreflightMode`]), the product-form Lipschitz
//! bound is recomputed from the shipped weights and compared against the
//! bundle's claim, a fresh seeded empirical sweep over the bundle's
//! input domain checks that the claim actually dominates observed slopes,
//! and the fast-tier (reduced-precision kernel) error certificate is
//! re-derived from the shipped weights and compared field by field.
//! A bundle that fails any of these never reaches the engine.

use crate::bundle::{BundleError, ControllerBundle};
use cocktail_analysis::{AnalysisReport, Analyzer, PreflightMode};
use cocktail_nn::lipschitz;
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use std::fmt;

/// Tuning knobs of the admission gate.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// How lint findings gate admission. [`PreflightMode::Deny`] (the
    /// serving default — stricter than the pipeline's `Warn`) refuses any
    /// error-level finding; `Warn` reports and admits; `Off` skips the
    /// analyzer entirely. The Lipschitz checks run in every mode.
    pub mode: PreflightMode,
    /// Sample pairs of the fresh empirical Lipschitz sweep.
    pub sweep_samples: usize,
    /// Seed of the sweep (fixed so admission is deterministic).
    pub sweep_seed: u64,
    /// Relative tolerance when comparing the recomputed certified bound
    /// against the bundle's claim (absorbs cross-platform libm jitter).
    pub claim_tolerance: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            mode: PreflightMode::Deny,
            sweep_samples: 2000,
            sweep_seed: 0x5eed,
            claim_tolerance: 1e-6,
        }
    }
}

/// Why a bundle was refused.
#[derive(Debug, Clone)]
pub enum AdmissionError {
    /// The bundle itself is malformed (see [`BundleError`]).
    Bundle(BundleError),
    /// Deny-mode lint gate: error-level analyzer findings.
    LintDenied {
        /// One-line totals of the fresh report.
        summary: String,
        /// Full rendered findings.
        rendered: String,
    },
    /// The recomputed certified bound disagrees with the bundle's claim —
    /// the weights or the claim were altered after export.
    ClaimMismatch {
        /// What the bundle claims.
        claimed: f64,
        /// What the shipped weights certify to.
        recomputed: f64,
    },
    /// The fresh empirical sweep observed a slope above the claim — the
    /// claim cannot be a valid upper bound.
    ClaimViolated {
        /// What the bundle claims.
        claimed: f64,
        /// Largest observed slope.
        observed: f64,
    },
    /// The shipped fast-tier certificate disagrees with the one admission
    /// re-derives from the shipped weights — the claimed reduced-precision
    /// error bounds cannot be trusted, so no fast kernel may serve.
    FastTierMismatch {
        /// What disagreed.
        detail: String,
    },
    /// The controller cannot be served against this plant (wrong family,
    /// dimension mismatch, envelope outside the actuator range).
    Unservable(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Bundle(e) => write!(f, "{e}"),
            AdmissionError::LintDenied { summary, rendered } => {
                write!(f, "lint gate denied admission ({summary}):\n{rendered}")
            }
            AdmissionError::ClaimMismatch {
                claimed,
                recomputed,
            } => write!(
                f,
                "Lipschitz certificate mismatch: bundle claims {claimed}, shipped \
                 weights certify to {recomputed}"
            ),
            AdmissionError::ClaimViolated { claimed, observed } => write!(
                f,
                "Lipschitz claim violated: fresh sweep observed slope {observed} \
                 above the claimed bound {claimed}"
            ),
            AdmissionError::FastTierMismatch { detail } => {
                write!(f, "fast-tier certificate mismatch: {detail}")
            }
            AdmissionError::Unservable(msg) => write!(f, "unservable bundle: {msg}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<BundleError> for AdmissionError {
    fn from(e: BundleError) -> Self {
        AdmissionError::Bundle(e)
    }
}

/// A bundle that passed admission, with the evidence gathered on the way.
#[derive(Debug, Clone)]
pub struct Admitted {
    /// The admitted bundle.
    pub bundle: ControllerBundle,
    /// The fresh analyzer report (empty in [`PreflightMode::Off`]).
    pub report: AnalysisReport,
    /// Certified bound recomputed from the shipped weights.
    pub recomputed_bound: f64,
    /// Largest slope the fresh empirical sweep observed.
    pub sweep_lower_bound: f64,
}

/// Runs the admission gate with the default config and no telemetry.
///
/// # Errors
///
/// See [`admit_with`].
pub fn admit(bundle: ControllerBundle) -> Result<Admitted, AdmissionError> {
    admit_with(bundle, &AdmissionConfig::default(), &NullSink)
}

/// Runs the full admission gate.
///
/// # Errors
///
/// Returns an [`AdmissionError`] describing the first failed check; the
/// bundle never serves in that case.
pub fn admit_with(
    bundle: ControllerBundle,
    config: &AdmissionConfig,
    tel: &dyn Telemetry,
) -> Result<Admitted, AdmissionError> {
    let _span = Span::enter(tel, "serve/admission");
    let result = run_checks(bundle, config, tel);
    if tel.enabled() {
        match &result {
            Ok(_) => tel.record(Event::counter("serve.admissions", 1)),
            Err(e) => {
                tel.record(
                    Event::counter("serve.admission_refusals", 1).with("reason", kind_of(e)),
                );
            }
        }
    }
    result
}

/// Runs the full admission gate on a *rollout candidate*: everything
/// [`admit_with`] checks, plus compatibility with the dimensions the
/// running engine serves (a candidate may be plant-servable yet disagree
/// with the incumbent it must shadow).
///
/// # Errors
///
/// As [`admit_with`], plus [`AdmissionError::Unservable`] on an
/// engine-dimension mismatch.
pub fn admit_candidate(
    bundle: ControllerBundle,
    state_dim: usize,
    control_dim: usize,
    config: &AdmissionConfig,
    tel: &dyn Telemetry,
) -> Result<Admitted, AdmissionError> {
    let admitted = admit_with(bundle, config, tel)?;
    let (net, _) = admitted.bundle.network()?;
    if net.input_dim() != state_dim || net.output_dim() != control_dim {
        return Err(AdmissionError::Unservable(format!(
            "candidate dimensions ({} -> {}) != running engine ({state_dim} -> {control_dim})",
            net.input_dim(),
            net.output_dim()
        )));
    }
    Ok(admitted)
}

fn kind_of(e: &AdmissionError) -> &'static str {
    match e {
        AdmissionError::Bundle(_) => "bundle",
        AdmissionError::LintDenied { .. } => "lint-denied",
        AdmissionError::ClaimMismatch { .. } => "claim-mismatch",
        AdmissionError::ClaimViolated { .. } => "claim-violated",
        AdmissionError::FastTierMismatch { .. } => "fast-tier-mismatch",
        AdmissionError::Unservable(_) => "unservable",
    }
}

fn run_checks(
    bundle: ControllerBundle,
    config: &AdmissionConfig,
    tel: &dyn Telemetry,
) -> Result<Admitted, AdmissionError> {
    bundle.validate()?;
    let sys = bundle.system.dynamics();

    // ---- servability: family, dimensions, actuator envelope
    let (net, scale) = bundle.network()?;
    if net.input_dim() != sys.state_dim() {
        return Err(AdmissionError::Unservable(format!(
            "controller reads {} state dimensions, plant `{}` has {}",
            net.input_dim(),
            sys.name(),
            sys.state_dim()
        )));
    }
    if net.output_dim() != sys.control_dim() || scale.len() != sys.control_dim() {
        return Err(AdmissionError::Unservable(format!(
            "controller emits {} control dimensions (scale arity {}), plant `{}` \
             expects {}",
            net.output_dim(),
            scale.len(),
            sys.name(),
            sys.control_dim()
        )));
    }
    let (plant_lo, plant_hi) = sys.control_bounds();
    for (i, ((lo, hi), (plo, phi))) in bundle
        .u_inf
        .iter()
        .zip(&bundle.u_sup)
        .zip(plant_lo.iter().zip(&plant_hi))
        .enumerate()
    {
        if lo < plo || hi > phi {
            return Err(AdmissionError::Unservable(format!(
                "clip range [{lo}, {hi}] of control dimension {i} exceeds the \
                 plant's actuator range [{plo}, {phi}]"
            )));
        }
    }

    // ---- lint gate: a fresh analyzer run, never the shipped findings
    let report = if config.mode == PreflightMode::Off {
        AnalysisReport::new()
    } else {
        let report = Analyzer::new(sys).analyze(&bundle.spec);
        if tel.enabled() {
            for d in report.diagnostics() {
                tel.record(
                    Event::point("serve.admission.diagnostic")
                        .with("severity", d.severity.to_string())
                        .with("code", d.code)
                        .with("message", d.message.clone()),
                );
            }
        }
        if config.mode == PreflightMode::Deny && report.has_errors() {
            return Err(AdmissionError::LintDenied {
                summary: report.summary(),
                rendered: report.render(),
            });
        }
        report
    };

    // ---- Lipschitz certificate: recompute, then challenge with a sweep
    let spec = &bundle.spec;
    let recomputed = cocktail_analysis::certified_bound(spec).ok_or_else(|| {
        AdmissionError::Unservable("controller has no product-form Lipschitz bound".into())
    })?;
    let tol = config.claim_tolerance.max(0.0);
    let rel = (recomputed - bundle.lipschitz_claim).abs() / bundle.lipschitz_claim.abs().max(1.0);
    if rel > tol {
        return Err(AdmissionError::ClaimMismatch {
            claimed: bundle.lipschitz_claim,
            recomputed,
        });
    }
    let (net, scale) = bundle.network()?;
    let max_scale = scale.iter().copied().fold(0.0_f64, f64::max);
    let sweep = max_scale
        * lipschitz::empirical_lower_bound(
            net,
            &bundle.input_domain,
            config.sweep_samples.max(1),
            config.sweep_seed,
        );
    if sweep > bundle.lipschitz_claim * (1.0 + tol) {
        return Err(AdmissionError::ClaimViolated {
            claimed: bundle.lipschitz_claim,
            observed: sweep,
        });
    }

    // ---- fast-tier certificate: re-derive the reduced-precision error
    // bounds from the shipped weights (the derivation is deterministic,
    // so any disagreement means the claim or the weights were altered)
    let rederived = cocktail_nn::certify_fast_tier(net, &bundle.input_domain);
    match (&bundle.fast_tier, &rederived) {
        (Some(claimed), Some(fresh)) => {
            if !fresh.matches(claimed, tol.max(1e-9)) {
                return Err(AdmissionError::FastTierMismatch {
                    detail: format!(
                        "shipped bounds (ft {:?}, f32 {:?}) != re-derived (ft {:?}, f32 {:?})",
                        claimed.fast_tanh_output_error,
                        claimed.f32_output_error,
                        fresh.fast_tanh_output_error,
                        fresh.f32_output_error
                    ),
                });
            }
        }
        (Some(_), None) => {
            return Err(AdmissionError::FastTierMismatch {
                detail: "bundle ships a fast-tier certificate but the shipped weights \
                         do not admit one"
                    .into(),
            });
        }
        (None, Some(_)) => {
            return Err(AdmissionError::FastTierMismatch {
                detail: "shipped weights admit a fast-tier certificate but the bundle \
                         omits it"
                    .into(),
            });
        }
        (None, None) => {}
    }

    Ok(Admitted {
        bundle,
        report,
        recomputed_bound: recomputed,
        sweep_lower_bound: sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{fnv1a_64, Provenance};
    use cocktail_analysis::ControllerSpec;
    use cocktail_core::SystemId;
    use cocktail_nn::{Activation, MlpBuilder};
    use cocktail_obs::InMemorySink;

    fn healthy_bundle() -> ControllerBundle {
        let net = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(3)
            .build();
        ControllerBundle::package(
            SystemId::Oscillator,
            net,
            vec![20.0],
            Provenance {
                seed: 3,
                config_hash: fnv1a_64(b"admission-test"),
                crate_version: env!("CARGO_PKG_VERSION").to_string(),
            },
        )
        .expect("healthy student packages")
    }

    #[test]
    fn healthy_bundle_is_admitted_with_evidence() {
        let tel = InMemorySink::new();
        let admitted = admit_with(healthy_bundle(), &AdmissionConfig::default(), &tel)
            .expect("healthy bundle admitted");
        assert!(!admitted.report.has_errors());
        assert!(admitted.sweep_lower_bound <= admitted.bundle.lipschitz_claim);
        assert!(
            (admitted.recomputed_bound - admitted.bundle.lipschitz_claim).abs()
                < 1e-9 * admitted.bundle.lipschitz_claim.max(1.0)
        );
        assert_eq!(tel.counter_total("serve.admissions"), 1);
        assert_eq!(tel.counter_total("serve.admission_refusals"), 0);
    }

    #[test]
    fn nan_weight_is_lint_denied() {
        let mut b = healthy_bundle();
        if let ControllerSpec::Mlp { net, .. } = &mut b.spec {
            net.layers_mut()[0].weights_mut()[(0, 0)] = f64::NAN;
        }
        // validate() itself already refuses non-finite weights; the lint
        // gate is the second line of defence, so bypass validate by
        // checking the error kind only
        let tel = InMemorySink::new();
        let err = admit_with(b, &AdmissionConfig::default(), &tel).expect_err("refused");
        assert!(
            matches!(err, AdmissionError::Bundle(BundleError::NonFinite(_))),
            "{err}"
        );
        assert_eq!(tel.counter_total("serve.admission_refusals"), 1);
    }

    #[test]
    fn tampered_claim_is_a_certificate_mismatch() {
        let mut b = healthy_bundle();
        b.lipschitz_claim *= 0.5;
        let err = admit(b).expect_err("refused");
        assert!(matches!(err, AdmissionError::ClaimMismatch { .. }), "{err}");
    }

    #[test]
    fn tampered_weights_are_a_certificate_mismatch() {
        let mut b = healthy_bundle();
        if let ControllerSpec::Mlp { net, .. } = &mut b.spec {
            // finite tampering: scale one weight up so the certified bound
            // moves but every hygiene check still passes
            net.layers_mut()[0].weights_mut()[(0, 0)] *= 4.0;
        }
        let err = admit(b).expect_err("refused");
        assert!(matches!(err, AdmissionError::ClaimMismatch { .. }), "{err}");
    }

    #[test]
    fn tampered_fast_tier_cert_is_refused() {
        let mut b = healthy_bundle();
        let cert = b.fast_tier.as_mut().expect("tanh student has a cert");
        // understate the f32 quantization error claim by half: the serving
        // tier would then promise tighter outputs than the weights deliver
        cert.f32_output_error[0] *= 0.5;
        let err = admit(b).expect_err("refused");
        assert!(
            matches!(err, AdmissionError::FastTierMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn stripped_fast_tier_cert_is_refused() {
        let mut b = healthy_bundle();
        b.fast_tier = None;
        let err = admit(b).expect_err("refused");
        assert!(
            matches!(err, AdmissionError::FastTierMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn wrong_plant_is_unservable() {
        let mut b = healthy_bundle();
        b.system = SystemId::CartPole; // 4 state dims; the net reads 2
        let err = admit(b).expect_err("refused");
        assert!(matches!(err, AdmissionError::Unservable(_)), "{err}");
    }

    #[test]
    fn off_mode_still_verifies_the_certificate() {
        let mut b = healthy_bundle();
        b.lipschitz_claim *= 2.0;
        let cfg = AdmissionConfig {
            mode: PreflightMode::Off,
            ..AdmissionConfig::default()
        };
        let err = admit_with(b, &cfg, &NullSink).expect_err("refused");
        assert!(matches!(err, AdmissionError::ClaimMismatch { .. }), "{err}");
    }
}
