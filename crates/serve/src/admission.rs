//! The admission gate: nothing serves traffic until it passes here.
//!
//! Admission re-derives everything the bundle claims instead of trusting
//! it: the static analyzer runs afresh against the target plant (under the
//! usual Off/Warn/Deny [`PreflightMode`]), the product-form Lipschitz
//! bound is recomputed from the shipped weights and compared against the
//! bundle's claim, a fresh seeded empirical sweep over the bundle's
//! input domain checks that the claim actually dominates observed slopes,
//! the fast-tier (reduced-precision kernel) error certificate is
//! re-derived from the shipped weights and compared field by field, and
//! the formal safety certificate — Bernstein enclosure, closed-loop
//! reachability, control-invariant set — is re-derived from the shipped
//! weights, the plant spec and the embedded verification budgets, then
//! compared field by field (wall-clock excluded: it is a metric, not a
//! claim). A bundle that fails any of these never reaches the engine; a
//! bundle that ships *no* safety certificate (a version-2 artifact, or a
//! student whose certification exhausted its budget at export) is refused
//! as uncertified unless the operator opts in.

use crate::bundle::{BundleError, ControllerBundle};
use cocktail_analysis::{AnalysisReport, Analyzer, PreflightMode};
use cocktail_nn::lipschitz;
use cocktail_obs::{Event, NullSink, Span, Telemetry};
use cocktail_verify::{certify_controller, SafetyCert, SafetyVerdict};
use std::fmt;

/// Tuning knobs of the admission gate.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// How lint findings gate admission. [`PreflightMode::Deny`] (the
    /// serving default — stricter than the pipeline's `Warn`) refuses any
    /// error-level finding; `Warn` reports and admits; `Off` skips the
    /// analyzer entirely. The Lipschitz checks run in every mode.
    pub mode: PreflightMode,
    /// Sample pairs of the fresh empirical Lipschitz sweep.
    pub sweep_samples: usize,
    /// Seed of the sweep (fixed so admission is deterministic).
    pub sweep_seed: u64,
    /// Relative tolerance when comparing the recomputed certified bound
    /// against the bundle's claim (absorbs cross-platform libm jitter).
    pub claim_tolerance: f64,
    /// Admit bundles that carry no formal safety certificate (version-2
    /// artifacts, or students whose certification exhausted its budget at
    /// export). Off by default: an uncertified controller is refused with
    /// [`AdmissionError::Uncertified`]. When on, the bundle is admitted
    /// and the reason it is uncertified is recorded in the evidence. A
    /// *present but wrong* certificate is always refused regardless.
    pub allow_uncertified: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            mode: PreflightMode::Deny,
            sweep_samples: 2000,
            sweep_seed: 0x5eed,
            claim_tolerance: 1e-6,
            allow_uncertified: false,
        }
    }
}

/// Why a bundle was refused.
#[derive(Debug, Clone)]
pub enum AdmissionError {
    /// The bundle itself is malformed (see [`BundleError`]).
    Bundle(BundleError),
    /// Deny-mode lint gate: error-level analyzer findings.
    LintDenied {
        /// One-line totals of the fresh report.
        summary: String,
        /// Full rendered findings.
        rendered: String,
    },
    /// The recomputed certified bound disagrees with the bundle's claim —
    /// the weights or the claim were altered after export.
    ClaimMismatch {
        /// What the bundle claims.
        claimed: f64,
        /// What the shipped weights certify to.
        recomputed: f64,
    },
    /// The fresh empirical sweep observed a slope above the claim — the
    /// claim cannot be a valid upper bound.
    ClaimViolated {
        /// What the bundle claims.
        claimed: f64,
        /// Largest observed slope.
        observed: f64,
    },
    /// The shipped fast-tier certificate disagrees with the one admission
    /// re-derives from the shipped weights — the claimed reduced-precision
    /// error bounds cannot be trusted, so no fast kernel may serve.
    FastTierMismatch {
        /// What disagreed.
        detail: String,
    },
    /// The shipped safety certificate disagrees with the one admission
    /// re-derives from the shipped weights, plant spec and embedded
    /// budgets — or its budgets exceed the admission ceilings, or the
    /// re-derivation itself failed. Either the weights or the certificate
    /// were altered after export.
    SafetyMismatch {
        /// What disagreed.
        detail: String,
    },
    /// The shipped certificate claims `Safe` but the fresh re-derivation
    /// proves `NotProven` under the very same budgets: the safety verdict
    /// itself was forged. Distinguished from [`Self::SafetyMismatch`]
    /// because it is the one tamper that would have put an unproven
    /// controller on the wire claiming a formal guarantee.
    SafetyViolated {
        /// What disagreed.
        detail: String,
    },
    /// The bundle carries no safety certificate at all and the config does
    /// not allow uncertified controllers.
    Uncertified {
        /// Why the bundle is uncertified (format predates certification,
        /// or the certificate was omitted at export).
        reason: String,
    },
    /// The controller cannot be served against this plant (wrong family,
    /// dimension mismatch, envelope outside the actuator range).
    Unservable(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Bundle(e) => write!(f, "{e}"),
            AdmissionError::LintDenied { summary, rendered } => {
                write!(f, "lint gate denied admission ({summary}):\n{rendered}")
            }
            AdmissionError::ClaimMismatch {
                claimed,
                recomputed,
            } => write!(
                f,
                "Lipschitz certificate mismatch: bundle claims {claimed}, shipped \
                 weights certify to {recomputed}"
            ),
            AdmissionError::ClaimViolated { claimed, observed } => write!(
                f,
                "Lipschitz claim violated: fresh sweep observed slope {observed} \
                 above the claimed bound {claimed}"
            ),
            AdmissionError::FastTierMismatch { detail } => {
                write!(f, "fast-tier certificate mismatch: {detail}")
            }
            AdmissionError::SafetyMismatch { detail } => {
                write!(f, "safety certificate mismatch: {detail}")
            }
            AdmissionError::SafetyViolated { detail } => write!(
                f,
                "safety certificate violated: bundle claims a safe verdict the \
                 shipped weights do not re-derive ({detail})"
            ),
            AdmissionError::Uncertified { reason } => {
                write!(f, "uncertified controller refused: {reason}")
            }
            AdmissionError::Unservable(msg) => write!(f, "unservable bundle: {msg}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<BundleError> for AdmissionError {
    fn from(e: BundleError) -> Self {
        AdmissionError::Bundle(e)
    }
}

/// A bundle that passed admission, with the evidence gathered on the way.
#[derive(Debug, Clone)]
pub struct Admitted {
    /// The admitted bundle.
    pub bundle: ControllerBundle,
    /// The fresh analyzer report (empty in [`PreflightMode::Off`]).
    pub report: AnalysisReport,
    /// Certified bound recomputed from the shipped weights.
    pub recomputed_bound: f64,
    /// Largest slope the fresh empirical sweep observed.
    pub sweep_lower_bound: f64,
    /// The safety certificate admission re-derived from the shipped
    /// weights (not the shipped copy — though the two are known equal by
    /// the time admission succeeds). `None` for an uncertified bundle
    /// admitted under `allow_uncertified`.
    pub safety: Option<SafetyCert>,
    /// Why the bundle has no safety certificate, when it was admitted
    /// without one under `allow_uncertified`.
    pub uncertified_reason: Option<String>,
}

/// Runs the admission gate with the default config and no telemetry.
///
/// # Errors
///
/// See [`admit_with`].
pub fn admit(bundle: ControllerBundle) -> Result<Admitted, AdmissionError> {
    admit_with(bundle, &AdmissionConfig::default(), &NullSink)
}

/// Runs the full admission gate.
///
/// # Errors
///
/// Returns an [`AdmissionError`] describing the first failed check; the
/// bundle never serves in that case.
pub fn admit_with(
    bundle: ControllerBundle,
    config: &AdmissionConfig,
    tel: &dyn Telemetry,
) -> Result<Admitted, AdmissionError> {
    let _span = Span::enter(tel, "serve/admission");
    let result = run_checks(bundle, config, tel);
    if tel.enabled() {
        match &result {
            Ok(_) => tel.record(Event::counter("serve.admissions", 1)),
            Err(e) => {
                tel.record(
                    Event::counter("serve.admission_refusals", 1).with("reason", kind_of(e)),
                );
            }
        }
    }
    result
}

/// Runs the full admission gate on a *rollout candidate*: everything
/// [`admit_with`] checks, plus compatibility with the dimensions the
/// running engine serves (a candidate may be plant-servable yet disagree
/// with the incumbent it must shadow).
///
/// # Errors
///
/// As [`admit_with`], plus [`AdmissionError::Unservable`] on an
/// engine-dimension mismatch.
pub fn admit_candidate(
    bundle: ControllerBundle,
    state_dim: usize,
    control_dim: usize,
    config: &AdmissionConfig,
    tel: &dyn Telemetry,
) -> Result<Admitted, AdmissionError> {
    let admitted = admit_with(bundle, config, tel)?;
    let (net, _) = admitted.bundle.network()?;
    if net.input_dim() != state_dim || net.output_dim() != control_dim {
        return Err(AdmissionError::Unservable(format!(
            "candidate dimensions ({} -> {}) != running engine ({state_dim} -> {control_dim})",
            net.input_dim(),
            net.output_dim()
        )));
    }
    Ok(admitted)
}

fn kind_of(e: &AdmissionError) -> &'static str {
    match e {
        AdmissionError::Bundle(_) => "bundle",
        AdmissionError::LintDenied { .. } => "lint-denied",
        AdmissionError::ClaimMismatch { .. } => "claim-mismatch",
        AdmissionError::ClaimViolated { .. } => "claim-violated",
        AdmissionError::FastTierMismatch { .. } => "fast-tier-mismatch",
        AdmissionError::SafetyMismatch { .. } => "safety-mismatch",
        AdmissionError::SafetyViolated { .. } => "safety-violated",
        AdmissionError::Uncertified { .. } => "uncertified",
        AdmissionError::Unservable(_) => "unservable",
    }
}

fn run_checks(
    bundle: ControllerBundle,
    config: &AdmissionConfig,
    tel: &dyn Telemetry,
) -> Result<Admitted, AdmissionError> {
    bundle.validate()?;
    let sys = bundle.system.dynamics();

    // ---- servability: family, dimensions, actuator envelope
    let (net, scale) = bundle.network()?;
    if net.input_dim() != sys.state_dim() {
        return Err(AdmissionError::Unservable(format!(
            "controller reads {} state dimensions, plant `{}` has {}",
            net.input_dim(),
            sys.name(),
            sys.state_dim()
        )));
    }
    if net.output_dim() != sys.control_dim() || scale.len() != sys.control_dim() {
        return Err(AdmissionError::Unservable(format!(
            "controller emits {} control dimensions (scale arity {}), plant `{}` \
             expects {}",
            net.output_dim(),
            scale.len(),
            sys.name(),
            sys.control_dim()
        )));
    }
    let (plant_lo, plant_hi) = sys.control_bounds();
    for (i, ((lo, hi), (plo, phi))) in bundle
        .u_inf
        .iter()
        .zip(&bundle.u_sup)
        .zip(plant_lo.iter().zip(&plant_hi))
        .enumerate()
    {
        if lo < plo || hi > phi {
            return Err(AdmissionError::Unservable(format!(
                "clip range [{lo}, {hi}] of control dimension {i} exceeds the \
                 plant's actuator range [{plo}, {phi}]"
            )));
        }
    }

    // ---- lint gate: a fresh analyzer run, never the shipped findings
    let report = if config.mode == PreflightMode::Off {
        AnalysisReport::new()
    } else {
        let report = Analyzer::new(sys.clone()).analyze(&bundle.spec);
        if tel.enabled() {
            for d in report.diagnostics() {
                tel.record(
                    Event::point("serve.admission.diagnostic")
                        .with("severity", d.severity.to_string())
                        .with("code", d.code)
                        .with("message", d.message.clone()),
                );
            }
        }
        if config.mode == PreflightMode::Deny && report.has_errors() {
            return Err(AdmissionError::LintDenied {
                summary: report.summary(),
                rendered: report.render(),
            });
        }
        report
    };

    // ---- Lipschitz certificate: recompute, then challenge with a sweep
    let spec = &bundle.spec;
    let recomputed = cocktail_analysis::certified_bound(spec).ok_or_else(|| {
        AdmissionError::Unservable("controller has no product-form Lipschitz bound".into())
    })?;
    let tol = config.claim_tolerance.max(0.0);
    let rel = (recomputed - bundle.lipschitz_claim).abs() / bundle.lipschitz_claim.abs().max(1.0);
    if rel > tol {
        return Err(AdmissionError::ClaimMismatch {
            claimed: bundle.lipschitz_claim,
            recomputed,
        });
    }
    let (net, scale) = bundle.network()?;
    let max_scale = scale.iter().copied().fold(0.0_f64, f64::max);
    let sweep = max_scale
        * lipschitz::empirical_lower_bound(
            net,
            &bundle.input_domain,
            config.sweep_samples.max(1),
            config.sweep_seed,
        );
    if sweep > bundle.lipschitz_claim * (1.0 + tol) {
        return Err(AdmissionError::ClaimViolated {
            claimed: bundle.lipschitz_claim,
            observed: sweep,
        });
    }

    // ---- fast-tier certificate: re-derive the reduced-precision error
    // bounds from the shipped weights (the derivation is deterministic,
    // so any disagreement means the claim or the weights were altered)
    let rederived = cocktail_nn::certify_fast_tier(net, &bundle.input_domain);
    match (&bundle.fast_tier, &rederived) {
        (Some(claimed), Some(fresh)) => {
            if !fresh.matches(claimed, tol.max(1e-9)) {
                return Err(AdmissionError::FastTierMismatch {
                    detail: format!(
                        "shipped bounds (ft {:?}, f32 {:?}) != re-derived (ft {:?}, f32 {:?})",
                        claimed.fast_tanh_output_error,
                        claimed.f32_output_error,
                        fresh.fast_tanh_output_error,
                        fresh.f32_output_error
                    ),
                });
            }
        }
        (Some(_), None) => {
            return Err(AdmissionError::FastTierMismatch {
                detail: "bundle ships a fast-tier certificate but the shipped weights \
                         do not admit one"
                    .into(),
            });
        }
        (None, Some(_)) => {
            return Err(AdmissionError::FastTierMismatch {
                detail: "shipped weights admit a fast-tier certificate but the bundle \
                         omits it"
                    .into(),
            });
        }
        (None, None) => {}
    }

    // ---- safety certificate: re-derive the full formal loop (Bernstein
    // enclosure, closed-loop reachability, control-invariant set) from the
    // shipped weights, the plant spec and the *shipped* budgets, and
    // compare field by field. The certificate is a pure function of those
    // inputs and worker-count invariant, so any disagreement means the
    // weights or the certificate were altered after export. The budgets
    // are attacker-controlled, so they are checked against hard ceilings
    // before any work is spent on them.
    let mut safety = None;
    let mut uncertified_reason = None;
    match &bundle.safety {
        Some(claimed) => {
            if let Some(violation) = claimed
                .params
                .budget_ceiling_violation(&bundle.input_domain)
            {
                return Err(AdmissionError::SafetyMismatch {
                    detail: format!("shipped verification budgets exceed ceilings: {violation}"),
                });
            }
            let workers = cocktail_math::parallel::default_workers();
            match certify_controller(sys.as_ref(), net, scale, &claimed.params, workers, tel) {
                Ok(fresh) => match claimed.diff(&fresh, tol.max(1e-9)) {
                    None => safety = Some(fresh),
                    Some(field) => {
                        let detail =
                            format!("shipped and re-derived certificates disagree on `{field}`");
                        let forged_verdict = claimed.verdict == SafetyVerdict::Safe
                            && fresh.verdict == SafetyVerdict::NotProven;
                        return Err(if forged_verdict {
                            AdmissionError::SafetyViolated { detail }
                        } else {
                            AdmissionError::SafetyMismatch { detail }
                        });
                    }
                },
                Err(e) => {
                    return Err(AdmissionError::SafetyMismatch {
                        detail: format!("re-derivation under the shipped budgets failed: {e}"),
                    });
                }
            }
        }
        None => {
            let reason = if bundle.version < crate::bundle::BUNDLE_VERSION {
                format!(
                    "bundle format v{} predates safety certification",
                    bundle.version
                )
            } else {
                "bundle omits a safety certificate (certification exhausted its \
                 budget at export, or the certificate was stripped)"
                    .to_string()
            };
            if !config.allow_uncertified {
                return Err(AdmissionError::Uncertified { reason });
            }
            uncertified_reason = Some(reason);
        }
    }

    Ok(Admitted {
        bundle,
        report,
        recomputed_bound: recomputed,
        sweep_lower_bound: sweep,
        safety,
        uncertified_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::tests_support::{healthy_bundle, v2_bundle};
    use cocktail_analysis::ControllerSpec;
    use cocktail_core::SystemId;
    use cocktail_obs::InMemorySink;

    #[test]
    fn healthy_bundle_is_admitted_with_evidence() {
        let tel = InMemorySink::new();
        let admitted = admit_with(healthy_bundle(), &AdmissionConfig::default(), &tel)
            .expect("healthy bundle admitted");
        assert!(!admitted.report.has_errors());
        assert!(admitted.sweep_lower_bound <= admitted.bundle.lipschitz_claim);
        assert!(
            (admitted.recomputed_bound - admitted.bundle.lipschitz_claim).abs()
                < 1e-9 * admitted.bundle.lipschitz_claim.max(1.0)
        );
        let fresh = admitted.safety.as_ref().expect("safety evidence recorded");
        assert!(
            fresh.matches(admitted.bundle.safety.as_ref().expect("cert shipped"), 0.0),
            "evidence cert equals the shipped cert"
        );
        assert_eq!(admitted.uncertified_reason, None);
        assert_eq!(tel.counter_total("serve.admissions"), 1);
        assert_eq!(tel.counter_total("serve.admission_refusals"), 0);
    }

    #[test]
    fn nan_weight_is_lint_denied() {
        let mut b = healthy_bundle();
        if let ControllerSpec::Mlp { net, .. } = &mut b.spec {
            net.layers_mut()[0].weights_mut()[(0, 0)] = f64::NAN;
        }
        // validate() itself already refuses non-finite weights; the lint
        // gate is the second line of defence, so bypass validate by
        // checking the error kind only
        let tel = InMemorySink::new();
        let err = admit_with(b, &AdmissionConfig::default(), &tel).expect_err("refused");
        assert!(
            matches!(err, AdmissionError::Bundle(BundleError::NonFinite(_))),
            "{err}"
        );
        assert_eq!(tel.counter_total("serve.admission_refusals"), 1);
    }

    #[test]
    fn tampered_claim_is_a_certificate_mismatch() {
        let mut b = healthy_bundle();
        b.lipschitz_claim *= 0.5;
        let err = admit(b).expect_err("refused");
        assert!(matches!(err, AdmissionError::ClaimMismatch { .. }), "{err}");
    }

    #[test]
    fn tampered_weights_are_a_certificate_mismatch() {
        let mut b = healthy_bundle();
        if let ControllerSpec::Mlp { net, .. } = &mut b.spec {
            // finite tampering: scale one weight up so the certified bound
            // moves but every hygiene check still passes
            net.layers_mut()[0].weights_mut()[(0, 0)] *= 4.0;
        }
        let err = admit(b).expect_err("refused");
        assert!(matches!(err, AdmissionError::ClaimMismatch { .. }), "{err}");
    }

    #[test]
    fn tampered_fast_tier_cert_is_refused() {
        let mut b = healthy_bundle();
        let cert = b.fast_tier.as_mut().expect("tanh student has a cert");
        // understate the f32 quantization error claim by half: the serving
        // tier would then promise tighter outputs than the weights deliver
        cert.f32_output_error[0] *= 0.5;
        let err = admit(b).expect_err("refused");
        assert!(
            matches!(err, AdmissionError::FastTierMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn stripped_fast_tier_cert_is_refused() {
        let mut b = healthy_bundle();
        b.fast_tier = None;
        let err = admit(b).expect_err("refused");
        assert!(
            matches!(err, AdmissionError::FastTierMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn wrong_plant_is_unservable() {
        let mut b = healthy_bundle();
        b.system = SystemId::CartPole; // 4 state dims; the net reads 2
        let err = admit(b).expect_err("refused");
        assert!(matches!(err, AdmissionError::Unservable(_)), "{err}");
    }

    #[test]
    fn off_mode_still_verifies_the_certificate() {
        let mut b = healthy_bundle();
        b.lipschitz_claim *= 2.0;
        let cfg = AdmissionConfig {
            mode: PreflightMode::Off,
            ..AdmissionConfig::default()
        };
        let err = admit_with(b, &cfg, &NullSink).expect_err("refused");
        assert!(matches!(err, AdmissionError::ClaimMismatch { .. }), "{err}");
    }

    #[test]
    fn tampered_safety_cert_is_a_mismatch() {
        let mut b = healthy_bundle();
        let cert = b.safety.as_mut().expect("fixture ships a cert");
        cert.invariant_digest ^= 1; // single-bit tamper
        let tel = InMemorySink::new();
        let err = admit_with(b, &AdmissionConfig::default(), &tel).expect_err("refused");
        assert!(
            matches!(&err, AdmissionError::SafetyMismatch { detail }
                if detail.contains("invariant_digest")),
            "{err}"
        );
        assert_eq!(tel.counter_total("serve.admission_refusals"), 1);
    }

    #[test]
    fn forged_safe_verdict_is_a_violation() {
        let mut b = healthy_bundle();
        let cert = b.safety.as_mut().expect("fixture ships a cert");
        // the coarse fixture budgets genuinely prove NotProven; forging the
        // verdict to Safe is the one tamper that would put an unproven
        // controller on the wire claiming a formal guarantee
        assert_eq!(
            cert.verdict,
            SafetyVerdict::NotProven,
            "fixture premise: coarse budgets do not prove safety"
        );
        cert.verdict = SafetyVerdict::Safe;
        let err = admit(b).expect_err("refused");
        assert!(
            matches!(err, AdmissionError::SafetyViolated { .. }),
            "{err}"
        );
    }

    #[test]
    fn hostile_safety_budgets_are_refused_before_any_work() {
        let mut b = healthy_bundle();
        let cert = b.safety.as_mut().expect("fixture ships a cert");
        cert.params.invariant.max_iterations = usize::MAX;
        let err = admit(b).expect_err("refused");
        assert!(
            matches!(&err, AdmissionError::SafetyMismatch { detail }
                if detail.contains("ceiling")),
            "{err}"
        );
    }

    #[test]
    fn stripped_safety_cert_is_uncertified_unless_allowed() {
        let mut b = healthy_bundle();
        b.safety = None;
        let err = admit(b.clone()).expect_err("refused by default");
        assert!(
            matches!(&err, AdmissionError::Uncertified { reason }
                if reason.contains("omits")),
            "{err}"
        );

        let cfg = AdmissionConfig {
            allow_uncertified: true,
            ..AdmissionConfig::default()
        };
        let admitted = admit_with(b, &cfg, &NullSink).expect("admitted under opt-in");
        assert_eq!(admitted.safety, None);
        let reason = admitted.uncertified_reason.expect("reason recorded");
        assert!(reason.contains("omits"), "{reason}");
    }

    #[test]
    fn v2_bundles_are_uncertified_with_a_version_reason() {
        let b = v2_bundle();
        let tel = InMemorySink::new();
        let err = admit_with(b.clone(), &AdmissionConfig::default(), &tel).expect_err("refused");
        assert!(
            matches!(&err, AdmissionError::Uncertified { reason }
                if reason.contains("v2") && reason.contains("predates")),
            "{err}"
        );
        assert_eq!(tel.counter_total("serve.admission_refusals"), 1);

        let cfg = AdmissionConfig {
            allow_uncertified: true,
            ..AdmissionConfig::default()
        };
        let admitted = admit_with(b, &cfg, &NullSink).expect("admitted under opt-in");
        let reason = admitted.uncertified_reason.expect("reason recorded");
        assert!(reason.contains("predates"), "{reason}");
    }
}
