//! Rollout drills: canary routing determinism across shard counts,
//! promote bit-equivalence with a cold start, auto-rollback containment
//! of poisoned candidates, and drift alarms reaching telemetry and the
//! supervisor's retrain-request handoff.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    reason = "test code; panics are failures"
)]

use cocktail_core::supervisor::{load_retrain_request, save_retrain_request};
use cocktail_math::vector;
use cocktail_nn::{Activation, Mlp, MlpBuilder};
use cocktail_obs::{FieldValue, InMemorySink};
use cocktail_serve::{
    routes_to_canary, DriftConfig, Engine, EngineConfig, RolloutAction, RolloutBudget,
    RolloutConfig, Ticket,
};
use std::sync::Arc;

const SCALE: f64 = 2.0;
const U_INF: f64 = -5.0;
const U_SUP: f64 = 5.0;

fn incumbent_net() -> Mlp {
    MlpBuilder::new(2)
        .hidden(6, Activation::Tanh)
        .output(1, Activation::Identity)
        .seed(5)
        .build()
}

/// The incumbent with one weight nudged: dimensionally identical,
/// numerically distinct on every input.
fn candidate_net() -> Mlp {
    let mut net = incumbent_net();
    net.layers_mut()[0].weights_mut()[(0, 0)] += 1e-3;
    net
}

fn nan_net() -> Mlp {
    let mut net = incumbent_net();
    net.layers_mut()[0].weights_mut()[(0, 0)] = f64::NAN;
    net
}

fn engine_with(config: EngineConfig, tel: Arc<InMemorySink>) -> Engine {
    Engine::from_parts(
        incumbent_net(),
        vec![SCALE],
        vec![U_INF],
        vec![U_SUP],
        config,
        None,
        tel,
    )
    .expect("engine starts")
}

fn propose(engine: &Engine, net: Mlp, cfg: &RolloutConfig) {
    engine
        .propose_parts(net, vec![SCALE], vec![U_INF], vec![U_SUP], cfg)
        .expect("candidate installs");
}

/// The per-sample oracle for a given network.
fn oracle(net: &Mlp, state: &[f64]) -> Vec<f64> {
    let scaled: Vec<f64> = net.forward(state).iter().map(|y| y * SCALE).collect();
    vector::clip(&scaled, &[U_INF], &[U_SUP])
}

/// A deterministic state stream that exercises both signs and the
/// interior of the domain.
fn states(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            #[allow(clippy::cast_precision_loss, reason = "test ids are tiny")]
            let t = i as f64;
            vec![(t * 0.37).sin() * 0.9, (t * 0.13).cos() * 0.8]
        })
        .collect()
}

#[test]
fn canary_split_is_bit_reproducible_across_shard_counts() {
    let permille = 250u32;
    let cfg = RolloutConfig {
        fraction_permille: permille,
        budget: RolloutBudget::default(),
    };
    let inputs = states(200);
    let inc = incumbent_net();
    let cand = candidate_net();

    let mut runs: Vec<Vec<Vec<f64>>> = Vec::new();
    for shards in [1usize, 2, 8] {
        let engine = engine_with(
            EngineConfig {
                max_batch: 8,
                queue_capacity: 1024,
                start_paused: true,
                shards,
                ..EngineConfig::default()
            },
            Arc::new(InMemorySink::new()),
        );
        propose(&engine, cand.clone(), &cfg);
        let h = engine.handle();
        // explicit request ids: canary routing hashes the id and nothing
        // else, so the split must be identical whatever the shard count
        let tickets: Vec<(u64, Ticket)> = inputs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let id = i as u64;
                let t = h
                    .pinned(id)
                    .try_submit_with_id(id, s)
                    .expect("queued while paused");
                (id, t)
            })
            .collect();
        engine.resume();

        let mut outputs = Vec::with_capacity(tickets.len());
        let (mut on_canary, mut on_incumbent) = (0usize, 0usize);
        for ((id, ticket), state) in tickets.into_iter().zip(&inputs) {
            let got = ticket.wait().expect("served");
            assert!(!got.served_by_fallback, "canary traffic never falls back");
            let want = if routes_to_canary(id, permille) {
                on_canary += 1;
                oracle(&cand, state)
            } else {
                on_incumbent += 1;
                oracle(&inc, state)
            };
            assert_eq!(
                got.control, want,
                "shards={shards} id={id} must match the routed network's \
                 per-sample oracle bitwise"
            );
            outputs.push(got.control);
        }
        assert!(
            on_canary > 0,
            "a 25% split over 200 ids must hit the canary"
        );
        assert!(on_incumbent > 0, "and must leave incumbent traffic too");
        let status = engine.rollout_status();
        assert!(status.canary_active);
        assert_eq!(status.canary_served, on_canary as u64);
        assert_eq!(status.canary_shadowed, on_canary as u64);
        runs.push(outputs);
    }
    assert_eq!(runs[0], runs[1], "shards=1 and shards=2 agree bitwise");
    assert_eq!(runs[0], runs[2], "shards=1 and shards=8 agree bitwise");
}

#[test]
fn promote_serves_the_same_bits_as_a_cold_start() {
    let inputs = states(64);
    let cand = candidate_net();

    // path A: incumbent v1, canary v2, promote, then serve
    let rolled = engine_with(EngineConfig::default(), Arc::new(InMemorySink::new()));
    propose(&rolled, cand.clone(), &RolloutConfig::default());
    rolled.promote().expect("canary promotes");

    // path B: an engine born on v2
    let cold = Engine::from_parts(
        cand.clone(),
        vec![SCALE],
        vec![U_INF],
        vec![U_SUP],
        EngineConfig::default(),
        None,
        Arc::new(InMemorySink::new()),
    )
    .expect("engine starts");

    let (rh, ch) = (rolled.handle(), cold.handle());
    for s in &inputs {
        let a = rh.submit(s).expect("served").control;
        let b = ch.submit(s).expect("served").control;
        assert_eq!(a, b, "promoted engine must be bit-identical to cold start");
        assert_eq!(a, oracle(&cand, s), "and both must match the v2 oracle");
    }
    let status = rolled.rollout_status();
    assert!(!status.canary_active, "promote clears the canary slot");
    assert!(
        rolled
            .rollout_events()
            .iter()
            .any(|e| e.action == RolloutAction::Promoted),
        "the trail records the promotion"
    );
}

#[test]
fn nan_candidate_auto_rolls_back_with_zero_escapes() {
    let tel = Arc::new(InMemorySink::new());
    let engine = engine_with(
        EngineConfig {
            max_batch: 8,
            queue_capacity: 1024,
            start_paused: true,
            ..EngineConfig::default()
        },
        tel.clone(),
    );
    // half of all traffic routes to a candidate whose first forward pass
    // is NaN — admission would refuse this net, so inject it raw
    propose(
        &engine,
        nan_net(),
        &RolloutConfig {
            fraction_permille: 500,
            budget: RolloutBudget::default(),
        },
    );
    let inc = incumbent_net();
    let inputs = states(96);
    let h = engine.handle();
    let tickets: Vec<Ticket> = inputs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            h.pinned(i as u64)
                .try_submit_with_id(i as u64, s)
                .expect("queued")
        })
        .collect();
    engine.resume();

    for (ticket, state) in tickets.into_iter().zip(&inputs) {
        let got = ticket.wait().expect("served");
        assert!(!got.served_by_fallback, "containment is not a fallback");
        assert_eq!(
            got.control,
            oracle(&inc, state),
            "every reply must carry incumbent bits: zero candidate escapes"
        );
    }

    let status = engine.rollout_status();
    assert!(!status.canary_active, "the canary slot is quarantined");
    assert!(status.nonfinite_canary_outputs > 0, "the trigger was seen");
    let events = engine.rollout_events();
    assert!(
        events
            .iter()
            .any(|e| e.action == RolloutAction::AutoRolledBack && e.detail.contains("non-finite")),
        "the trail records the auto-rollback and its cause: {events:?}"
    );
    // the same trail flows out as structured telemetry
    assert!(
        tel.events_named("serve.rollout")
            .iter()
            .any(|e| e.fields.iter().any(|(k, v)| {
                k == "action" && matches!(v, FieldValue::Str(s) if s == "auto-rolled-back")
            })),
        "serve.rollout must carry the auto-rollback"
    );
    assert!(tel.counter_total("serve.rollbacks") >= 1);
    assert_eq!(tel.counter_total("serve.fallbacks"), 0);
}

#[test]
fn divergence_budget_trips_and_restores_the_incumbent() {
    let engine = engine_with(
        EngineConfig {
            start_paused: true,
            queue_capacity: 1024,
            ..EngineConfig::default()
        },
        Arc::new(InMemorySink::new()),
    );
    // every request canaries, and no candidate output may differ from
    // the incumbent by more than 1e-15 — the nudged weight guarantees a
    // larger gap on the first compared batch
    propose(
        &engine,
        candidate_net(),
        &RolloutConfig {
            fraction_permille: 1000,
            budget: RolloutBudget {
                max_divergence: 1e-15,
                max_envelope_violations: u64::MAX,
            },
        },
    );
    let inc = incumbent_net();
    let inputs = states(32);
    let h = engine.handle();
    let tickets: Vec<Ticket> = inputs
        .iter()
        .enumerate()
        .map(|(i, s)| h.pinned(0).try_submit_with_id(i as u64, s).expect("queued"))
        .collect();
    engine.resume();
    for (ticket, state) in tickets.into_iter().zip(&inputs) {
        let got = ticket.wait().expect("served");
        assert_eq!(
            got.control,
            oracle(&inc, state),
            "after the trip every reply is incumbent bits"
        );
    }
    assert!(!engine.rollout_status().canary_active);
    assert!(engine
        .rollout_events()
        .iter()
        .any(|e| e.action == RolloutAction::AutoRolledBack && e.detail.contains("divergence")));
}

#[test]
fn drift_alarms_reach_telemetry_and_the_retrain_handoff() {
    let tel = Arc::new(InMemorySink::new());
    let engine = engine_with(
        EngineConfig {
            drift: Some(DriftConfig {
                window: 32,
                bins: 8,
                threshold: 0.5,
            }),
            ..EngineConfig::default()
        },
        tel.clone(),
    );
    let h = engine.handle();
    // first window: varied in-domain traffic freezes the baseline
    for s in states(32) {
        h.submit(&s).expect("served");
    }
    assert!(
        engine.drift_reports().is_empty(),
        "baseline window is quiet"
    );
    // then the served distribution collapses to a single operating
    // point: two full windows, two alarms. The worker publishes an
    // alarm after the window's replies but before it picks up the next
    // batch, so one probe request fences the log.
    for _ in 0..64 {
        h.submit(&[0.9, 0.8]).expect("served");
    }
    h.submit(&[0.9, 0.8]).expect("probe fences the alarm log");
    let reports = engine.drift_reports();
    assert_eq!(reports.len(), 2, "each collapsed window must alarm");
    let report = &reports[0];
    assert!(report.distance > report.threshold);
    assert_eq!(report.window, 32);
    assert!(
        !tel.events_named("serve.drift").is_empty(),
        "the alarm also flows out as serve.drift telemetry"
    );
    assert!(tel.counter_total("serve.drift.alarms") >= 1);
    assert!(engine
        .rollout_events()
        .iter()
        .any(|e| e.action == RolloutAction::Drift));

    // the alarm converts into the supervisor's on-disk retrain demand
    let dir = std::env::temp_dir().join(format!(
        "cocktail-serve-rollout-drift-{}",
        std::process::id()
    ));
    let req = report.to_retrain_request("oscillator");
    let path = save_retrain_request(&dir, &req).expect("request persists");
    assert!(path.exists());
    let back = load_retrain_request(&dir)
        .expect("readable")
        .expect("present");
    assert_eq!(back.system, "oscillator");
    assert!(back.reason.contains("drift"));
    std::fs::remove_dir_all(&dir).ok();

    // after an intentional rebaseline the same operating point is
    // quiet: one window freezes the new baseline, two more match it
    engine.rebaseline_drift();
    for _ in 0..96 {
        h.submit(&[0.9, 0.8]).expect("served");
    }
    h.submit(&[0.9, 0.8]).expect("probe fences the alarm log");
    assert_eq!(
        engine.drift_reports().len(),
        2,
        "rebaselined detector accepts the new distribution"
    );
}
