//! Proof that the shard worker's steady-state batch loop allocates
//! nothing: a counting global allocator wraps `System`, the engine is
//! warmed up, and then a full submit → batch → serve → drain round on the
//! binary-wire (outbox) reply path must register **zero** heap
//! allocations across every thread in the process.
//!
//! This is its own test binary because a `#[global_allocator]` is
//! process-wide; running it next to unrelated tests would count their
//! allocations too.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    reason = "test code; panics are failures"
)]

use cocktail_nn::{Activation, MlpBuilder};
use cocktail_obs::NullSink;
use cocktail_serve::{Engine, EngineConfig, Outbox, RolloutBudget, RolloutConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the bookkeeping uses
// only lock-free atomics, which themselves never allocate
static SIZES: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            let n = ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            if (n as usize) < SIZES.len() {
                SIZES[n as usize].store(layout.size() as u64, Ordering::Relaxed);
            }
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_batch_loop_is_allocation_free_on_the_outbox_path() {
    // Both are multiples of max_batch, so every batch is full and the
    // same size class serves warm-up and measurement. Warming with MORE
    // requests than the measured round over-provisions the shard's
    // pooled state buffers: the worker returns a batch's buffers at its
    // next loop-top, which can race with the next round's submits, so
    // the pool must stay deep enough to absorb one in-flight batch.
    const WARM_REQUESTS: usize = 64;
    const REQUESTS: usize = 32;
    const MAX_BATCH: usize = 8;

    let net = MlpBuilder::new(2)
        .hidden(8, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(23)
        .build();
    let engine = Engine::from_parts(
        net,
        vec![20.0],
        vec![-20.0],
        vec![20.0],
        EngineConfig {
            max_batch: MAX_BATCH,
            queue_capacity: 256,
            start_paused: true,
            shards: 1,
            ..EngineConfig::default()
        },
        None,
        Arc::new(NullSink),
    )
    .expect("engine starts");
    let pinned = engine.handle().pinned(0);
    let outbox = Arc::new(Outbox::new());
    let states: Vec<[f64; 2]> = (0..WARM_REQUESTS)
        .map(|i| {
            #[allow(clippy::cast_precision_loss, reason = "tiny test indices")]
            [i as f64 * 0.01 - 0.15, 0.2]
        })
        .collect();
    let mut drained = Vec::with_capacity(WARM_REQUESTS);

    let mut round = |count: bool, requests: usize| {
        // paused submit gives the worker full deterministic batches
        engine.pause();
        if count {
            ALLOCATIONS.store(0, Ordering::SeqCst);
            COUNTING.store(true, Ordering::SeqCst);
        }
        for (i, s) in states.iter().take(requests).enumerate() {
            pinned
                .try_submit_outbox(i as u64, s, &outbox)
                .expect("queued");
        }
        engine.resume();
        drained.clear();
        while drained.len() < requests {
            assert!(
                outbox.wait_nonempty(Duration::from_secs(10)),
                "worker answers within the deadline"
            );
            outbox.drain_into(&mut drained);
        }
        if count {
            COUNTING.store(false, Ordering::SeqCst);
        }
        for rec in &drained {
            assert!(rec.is_ok(), "healthy net serves every request");
            assert!(rec.control()[0].is_finite());
        }
    };

    let report = |phase: &str| {
        let allocations = ALLOCATIONS.load(Ordering::SeqCst);
        let sizes: Vec<u64> = SIZES
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .take(allocations.min(16) as usize)
            .collect();
        assert_eq!(
            allocations, 0,
            "{phase} must not allocate (counted {allocations} allocations across {REQUESTS} requests; first sizes: {sizes:?})"
        );
    };

    // warm-up rounds: grow the shard's pooled state buffers, the
    // size-class batch scratch, the outbox ring, and the OS thread's
    // parking machinery
    for _ in 0..3 {
        round(false, WARM_REQUESTS);
    }
    // measured round: a full submit → serve → drain cycle
    round(true, REQUESTS);
    report("steady-state batch loop");

    // a canary in flight adds routing, the candidate forward pass, and
    // the incumbent shadow comparison to every batch — all of which must
    // run out of the same pooled scratch. The propose itself is control
    // plane (uncounted); the serving rounds are the claim.
    let candidate = MlpBuilder::new(2)
        .hidden(8, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(29)
        .build();
    engine
        .propose_parts(
            candidate,
            vec![20.0],
            vec![-20.0],
            vec![20.0],
            &RolloutConfig {
                fraction_permille: 500,
                budget: RolloutBudget::default(),
            },
        )
        .expect("candidate installs");
    for _ in 0..3 {
        round(false, WARM_REQUESTS);
    }
    round(true, REQUESTS);
    report("canary shadow round");

    // promote on the control plane, then measure the FIRST post-swap
    // round with no intervening warm-up: the worker observes the epoch
    // swap at the counted round's first batch boundary (a refcount
    // bump), so the measurement spans the swap itself.
    engine.promote().expect("canary promotes");
    round(true, REQUESTS);
    report("first round across the promote swap");
}
