//! End-to-end drills for the serving runtime: batch-schedule invariance,
//! deterministic backpressure, corrupted-bundle refusal, and the wire
//! path.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    reason = "test code; panics are failures"
)]

use cocktail_control::{Controller, NnController};
use cocktail_core::SystemId;
use cocktail_math::{rng, vector};
use cocktail_nn::{Activation, Mlp, MlpBuilder};
use cocktail_obs::NullSink;
use cocktail_serve::bundle::{fnv1a_64, ControllerBundle, Provenance};
use cocktail_serve::loadgen::{self, LoadGenConfig, WireProtocol};
use cocktail_serve::{
    admit, AdmissionError, BundleError, Engine, EngineConfig, ServeError, Server, Ticket,
};
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

fn student() -> Mlp {
    MlpBuilder::new(2)
        .hidden(8, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(23)
        .build()
}

fn provenance() -> Provenance {
    Provenance {
        seed: 23,
        config_hash: fnv1a_64(b"integration"),
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
    }
}

fn bundle() -> ControllerBundle {
    // memoized: packaging runs the full safety-certification loop, so pay
    // for it once per test binary (coarse budgets — admission re-derives
    // with whatever the bundle ships, so cheap budgets stay sound)
    static CELL: std::sync::OnceLock<ControllerBundle> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let params = cocktail_verify::fast_params(SystemId::Oscillator.dynamics().as_ref());
        ControllerBundle::package_with(
            SystemId::Oscillator,
            student(),
            vec![20.0],
            provenance(),
            Some(&params),
            &NullSink,
        )
        .expect("healthy student packages")
    })
    .clone()
}

/// The per-sample reference path every batch schedule must reproduce.
fn reference(bundle: &ControllerBundle, state: &[f64]) -> Vec<f64> {
    let (net, scale) = bundle.network().expect("mlp bundle");
    let controller = NnController::new(net.clone(), scale.to_vec());
    vector::clip(&controller.control(state), &bundle.u_inf, &bundle.u_sup)
}

#[test]
fn batched_outputs_are_bit_identical_across_schedules() {
    let b = bundle();
    let admitted = admit(b.clone()).expect("admitted");
    let states = loadgen::generate_states(&b, 48, 0xBA7C);
    let expected: Vec<Vec<f64>> = states.iter().map(|s| reference(&b, s)).collect();

    for max_batch in [1usize, 4, 16] {
        let engine = Engine::start_with(
            &admitted,
            EngineConfig {
                max_batch,
                batch_deadline: Duration::from_micros(100),
                queue_capacity: 256,
                start_paused: true,
                shards: 1,
                ..EngineConfig::default()
            },
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        let h = engine.handle();
        // queue everything while paused so the worker has full batches to
        // form, then release: batch composition is now deterministic
        let tickets: Vec<Ticket> = states
            .iter()
            .map(|s| h.try_submit(s).expect("queued"))
            .collect();
        engine.resume();
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().expect("served");
            assert!(!got.served_by_fallback, "healthy net never falls back");
            assert_eq!(
                &got.control, want,
                "max_batch={max_batch} must match the per-sample path bitwise"
            );
        }
    }
}

#[test]
fn backpressure_is_deterministic_under_a_seeded_burst() {
    let b = bundle();
    let admitted = admit(b.clone()).expect("admitted");
    let capacity = 8usize;
    let burst = loadgen::generate_states(&b, 20, 0xF00D);

    // two identical runs against a paused engine must refuse exactly the
    // same requests: the first `capacity` queue, the rest bounce
    let mut outcomes = Vec::new();
    for _ in 0..2 {
        let engine = Engine::start_with(
            &admitted,
            EngineConfig {
                queue_capacity: capacity,
                start_paused: true,
                ..EngineConfig::default()
            },
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        let h = engine.handle();
        let mut accepted = Vec::new();
        let mut pattern = Vec::new();
        for s in &burst {
            match h.try_submit(s) {
                Ok(t) => {
                    pattern.push(true);
                    accepted.push(t);
                }
                Err(ServeError::Backpressure { depth }) => {
                    assert_eq!(depth, capacity);
                    pattern.push(false);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(pattern.iter().filter(|a| **a).count(), capacity);
        assert!(pattern[..capacity].iter().all(|a| *a), "first fill queues");
        engine.resume();
        for t in accepted {
            t.wait().expect("queued requests drain after resume");
        }
        outcomes.push(pattern);
    }
    assert_eq!(outcomes[0], outcomes[1], "rejection pattern is replayable");
}

#[test]
fn corrupted_bundles_never_serve() {
    // NaN smuggled into the weights: refused by strict validation
    let mut nan = bundle();
    if let cocktail_analysis::ControllerSpec::Mlp { net, .. } = &mut nan.spec {
        net.layers_mut()[0].weights_mut()[(0, 0)] = f64::NAN;
    }
    assert!(matches!(
        admit(nan).expect_err("NaN refused"),
        AdmissionError::Bundle(BundleError::NonFinite(_))
    ));

    // understated Lipschitz claim: certificate mismatch
    let mut lied = bundle();
    lied.lipschitz_claim *= 0.5;
    assert!(matches!(
        admit(lied).expect_err("tampered claim refused"),
        AdmissionError::ClaimMismatch { .. }
    ));

    // version skew survives the file round trip and is still refused
    let mut skewed = bundle();
    skewed.version = 99;
    let path = std::env::temp_dir().join(format!(
        "cocktail-serve-integration-skew-{}.json",
        std::process::id()
    ));
    assert!(skewed.save(&path).is_err(), "save refuses version skew");
    let healthy = bundle();
    healthy.save(&path).expect("healthy bundle saves");
    let text = std::fs::read_to_string(&path).expect("readable");
    std::fs::write(&path, text.replacen("\"version\": 3", "\"version\": 99", 1)).expect("writable");
    assert!(
        ControllerBundle::load(&path).is_err(),
        "load refuses version skew"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn tcp_smoke_serves_the_reference_bit_for_bit() {
    let b = bundle();
    let admitted = admit(b.clone()).expect("admitted");
    let engine = Engine::start(&admitted, EngineConfig::default()).expect("engine starts");
    let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
    let report = loadgen::run_tcp(
        &b,
        server.local_addr(),
        &LoadGenConfig {
            requests: 96,
            connections: 4,
            seed: 0x57E4,
            wire: WireProtocol::Json,
        },
    )
    .expect("drill runs");
    server.shutdown();
    assert!(report.is_clean(), "smoke must be clean: {report:?}");
    assert_eq!(report.completed, 96);
    assert_eq!(report.fallbacks, 0);
    assert_eq!(report.mismatches, 0);
}

#[test]
fn shard_counts_are_invariant_under_randomized_batch_schedules() {
    // the oracle: NnController::control + clip, per sample. Whatever the
    // shard count and however batches happen to form, every reply must
    // reproduce these bits.
    let b = bundle();
    let admitted = admit(b.clone()).expect("admitted");
    let states = loadgen::generate_states(&b, 96, 0x5AD5);
    let expected: Vec<Vec<f64>> = states.iter().map(|s| reference(&b, s)).collect();

    let mut schedule_rng = rng::seeded(0x5C4ED);
    for shards in [1usize, 2, 8] {
        let engine = Engine::start_with(
            &admitted,
            EngineConfig {
                max_batch: 8,
                start_paused: true,
                shards,
                ..EngineConfig::default()
            },
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        let h = engine.handle();
        // randomized schedule: requests arrive on random connections (so
        // random shards) in random pause/resume bursts — batch
        // composition varies wildly run to run, replies must not
        let mut tickets: Vec<(usize, Ticket)> = Vec::new();
        let mut i = 0usize;
        while i < states.len() {
            let burst = schedule_rng.gen_range(1..=16usize).min(states.len() - i);
            for _ in 0..burst {
                let conn: u64 = schedule_rng.gen_range(0..64u64);
                let t = h.pinned(conn).try_submit(&states[i]).expect("queued");
                tickets.push((i, t));
                i += 1;
            }
            if schedule_rng.gen_range(0..2u32) == 0 {
                engine.resume();
                engine.pause();
            }
        }
        engine.resume();
        for (idx, ticket) in tickets {
            let got = ticket.wait().expect("served");
            assert!(!got.served_by_fallback);
            assert_eq!(
                got.control, expected[idx],
                "shards={shards} request {idx} must match the per-sample oracle bitwise"
            );
        }
    }
}

#[test]
fn json_and_binary_wire_formats_serve_identical_bits() {
    let b = bundle();
    let admitted = admit(b.clone()).expect("admitted");
    let engine = Engine::start_with(
        &admitted,
        EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        },
        None,
        Arc::new(NullSink),
    )
    .expect("engine starts");
    let server = Server::bind("127.0.0.1:0", engine.handle()).expect("bind");
    for wire in [WireProtocol::Json, WireProtocol::Binary] {
        let report = loadgen::run_tcp(
            &b,
            server.local_addr(),
            &LoadGenConfig {
                requests: 96,
                connections: 4,
                seed: 0x3B1A,
                wire,
            },
        )
        .expect("drill runs");
        // zero mismatches against the shared per-sample oracle means the
        // two formats agree with the reference — and so with each other
        assert!(
            report.is_clean(),
            "{wire:?} drill must be clean: {report:?}"
        );
        assert_eq!(report.completed, 96);
    }
    server.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_smoke_serves_the_reference_on_both_wires_and_shard_counts() {
    use cocktail_serve::ReactorServer;
    let b = bundle();
    let admitted = admit(b.clone()).expect("admitted");
    for shards in [1usize, 4] {
        let engine = Engine::start_with(
            &admitted,
            EngineConfig {
                shards,
                ..EngineConfig::default()
            },
            None,
            Arc::new(NullSink),
        )
        .expect("engine starts");
        let server = ReactorServer::bind("127.0.0.1:0", engine.handle()).expect("bind");
        for wire in [WireProtocol::Json, WireProtocol::Binary] {
            let report = loadgen::run_tcp(
                &b,
                server.local_addr(),
                &LoadGenConfig {
                    requests: 128,
                    connections: 8,
                    seed: 0xEAC7,
                    wire,
                },
            )
            .expect("drill runs");
            assert!(
                report.is_clean(),
                "reactor {wire:?} shards={shards} must be clean: {report:?}"
            );
            assert!(report.p999_latency_us >= report.p99_latency_us);
            assert!(report.p99_latency_us >= report.p50_latency_us);
        }
        server.shutdown();
    }
}

#[test]
fn loadgen_streams_are_reproducible() {
    let b = bundle();
    assert_eq!(
        loadgen::generate_states(&b, 32, 9),
        loadgen::generate_states(&b, 32, 9)
    );
    let s = loadgen::generate_states(&b, 1, 9);
    let expected = loadgen::expected_control(&b, &s[0]).expect("mlp bundle");
    assert_eq!(expected, reference(&b, &s[0]));
}
