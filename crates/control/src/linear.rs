//! Linear state-feedback controllers.

use crate::controller::Controller;
use cocktail_math::{BoxRegion, Matrix};
use serde::{Deserialize, Serialize};

/// The affine feedback law `u = −K s + b`.
///
/// Used to manufacture deterministic, intentionally suboptimal experts (the
/// paper's experts "are not necessary to be optimal") and as the target of
/// behavior cloning into [`crate::NnController`]s. The bias term models a
/// systematically miscalibrated controller — e.g. one trained by a
/// different team against a drifted actuator model — and is the kind of
/// structured flaw adaptive *mixing* can cancel while *switching* cannot.
///
/// # Examples
///
/// ```
/// use cocktail_control::{Controller, LinearFeedbackController};
/// use cocktail_math::Matrix;
///
/// let k = LinearFeedbackController::new(Matrix::from_rows(vec![vec![1.0, 2.0]]));
/// assert_eq!(k.control(&[3.0, -1.0]), vec![-1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearFeedbackController {
    gain: Matrix,
    bias: Vec<f64>,
    label: String,
}

impl LinearFeedbackController {
    /// Creates `u = −gain · s` (no bias).
    pub fn new(gain: Matrix) -> Self {
        let bias = vec![0.0; gain.rows()];
        Self {
            gain,
            bias,
            label: "linear-feedback".to_owned(),
        }
    }

    /// Creates the controller with a custom label.
    pub fn with_name(gain: Matrix, label: impl Into<String>) -> Self {
        let bias = vec![0.0; gain.rows()];
        Self {
            gain,
            bias,
            label: label.into(),
        }
    }

    /// Creates the biased law `u = −gain · s + bias`.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != gain.rows()`.
    pub fn with_bias(gain: Matrix, bias: Vec<f64>, label: impl Into<String>) -> Self {
        assert_eq!(
            bias.len(),
            gain.rows(),
            "bias length must match control dimension"
        );
        Self {
            gain,
            bias,
            label: label.into(),
        }
    }

    /// The gain matrix `K`.
    pub fn gain(&self) -> &Matrix {
        &self.gain
    }

    /// The bias vector `b`.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }
}

impl Controller for LinearFeedbackController {
    fn control(&self, s: &[f64]) -> Vec<f64> {
        let mut u = cocktail_math::vector::scale(&self.gain.matvec(s), -1.0);
        cocktail_math::vector::axpy_inplace(&mut u, 1.0, &self.bias);
        u
    }

    fn state_dim(&self) -> usize {
        self.gain.cols()
    }

    fn control_dim(&self) -> usize {
        self.gain.rows()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
        Some(self.gain.spectral_norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_is_negative_gain_product() {
        let k =
            LinearFeedbackController::new(Matrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 3.0]]));
        assert_eq!(k.control(&[1.0, -1.0]), vec![-2.0, 3.0]);
        assert_eq!(k.state_dim(), 2);
        assert_eq!(k.control_dim(), 2);
    }

    #[test]
    fn lipschitz_is_gain_spectral_norm() {
        let k = LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
        let l = k
            .lipschitz(&BoxRegion::cube(2, -1.0, 1.0))
            .expect("linear always bounded");
        assert!((l - 5.0).abs() < 1e-9);
    }

    #[test]
    fn custom_label() {
        let k = LinearFeedbackController::with_name(Matrix::identity(2), "kappa1");
        assert_eq!(k.name(), "kappa1");
    }

    #[test]
    fn bias_shifts_output() {
        let k = LinearFeedbackController::with_bias(
            Matrix::from_rows(vec![vec![1.0, 0.0]]),
            vec![5.0],
            "biased",
        );
        assert_eq!(k.control(&[2.0, 0.0]), vec![3.0]);
        assert_eq!(k.bias(), &[5.0]);
        // bias does not change the Lipschitz constant
        let l = k.lipschitz(&BoxRegion::cube(2, -1.0, 1.0)).expect("linear");
        assert!((l - 1.0).abs() < 1e-9);
    }
}
