//! Discrete-time LQR synthesis and numerical linearization.
//!
//! The paper's experts can come from "well-established model-based
//! approaches, such as MPC or LQR"; this module provides that expert
//! family: linearize any [`Dynamics`] around an equilibrium by central
//! finite differences, then synthesize the infinite-horizon discrete LQR
//! gain by iterating the Riccati difference equation to its fixed point.
//! The result plugs straight into [`LinearFeedbackController`] (and from
//! there into behavior cloning or adaptive mixing).

use crate::linear::LinearFeedbackController;
use cocktail_env::Dynamics;
use cocktail_math::linalg::{inverse, SingularMatrixError};
use cocktail_math::Matrix;
use std::error::Error;
use std::fmt;

/// Why LQR synthesis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesizeLqrError {
    /// The Riccati recursion hit a singular `R + Bᵀ P B`.
    Singular,
    /// The recursion did not converge within the iteration cap — the
    /// linearized pair is likely unstabilizable or the weights degenerate.
    NotConverged {
        /// Final change between successive `P` iterates.
        residual: f64,
    },
}

impl fmt::Display for SynthesizeLqrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesizeLqrError::Singular => {
                f.write_str("riccati recursion hit a singular R + B'PB")
            }
            SynthesizeLqrError::NotConverged { residual } => {
                write!(
                    f,
                    "riccati recursion did not converge (residual {residual:.3e})"
                )
            }
        }
    }
}

impl Error for SynthesizeLqrError {}

#[doc(hidden)]
impl From<SingularMatrixError> for SynthesizeLqrError {
    fn from(_: SingularMatrixError) -> Self {
        SynthesizeLqrError::Singular
    }
}

/// A discrete-time linearization `s' ≈ A s + B u + c` of a plant around
/// `(s_eq, u_eq)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linearization {
    /// State Jacobian `∂f/∂s`.
    pub a: Matrix,
    /// Input Jacobian `∂f/∂u`.
    pub b: Matrix,
    /// Drift `f(s_eq, u_eq) − s_eq` (zero at a true equilibrium).
    pub drift: Vec<f64>,
}

/// Linearizes a plant's one-step map by central finite differences
/// (disturbance held at zero).
///
/// # Panics
///
/// Panics if `s_eq`/`u_eq` dimensions disagree with the plant.
///
/// # Examples
///
/// ```
/// use cocktail_control::lqr::linearize;
/// use cocktail_env::systems::VanDerPol;
///
/// let lin = linearize(&VanDerPol::new(), &[0.0, 0.0], &[0.0]);
/// // ds1' / ds2 = τ = 0.05
/// assert!((lin.a[(0, 1)] - 0.05).abs() < 1e-6);
/// assert!(lin.drift.iter().all(|d| d.abs() < 1e-9));
/// ```
pub fn linearize(sys: &dyn Dynamics, s_eq: &[f64], u_eq: &[f64]) -> Linearization {
    assert_eq!(s_eq.len(), sys.state_dim(), "state dimension mismatch");
    assert_eq!(u_eq.len(), sys.control_dim(), "control dimension mismatch");
    let n = sys.state_dim();
    let m = sys.control_dim();
    let omega = vec![0.0; sys.disturbance_dim()];
    let h = 1e-6;

    let mut a = Matrix::zeros(n, n);
    for j in 0..n {
        let mut sp = s_eq.to_vec();
        sp[j] += h;
        let mut sm = s_eq.to_vec();
        sm[j] -= h;
        let fp = sys.step(&sp, u_eq, &omega);
        let fm = sys.step(&sm, u_eq, &omega);
        for i in 0..n {
            a[(i, j)] = (fp[i] - fm[i]) / (2.0 * h);
        }
    }
    let mut b = Matrix::zeros(n, m);
    for j in 0..m {
        let mut up = u_eq.to_vec();
        up[j] += h;
        let mut um = u_eq.to_vec();
        um[j] -= h;
        let fp = sys.step(s_eq, &up, &omega);
        let fm = sys.step(s_eq, &um, &omega);
        for i in 0..n {
            b[(i, j)] = (fp[i] - fm[i]) / (2.0 * h);
        }
    }
    let f0 = sys.step(s_eq, u_eq, &omega);
    let drift = cocktail_math::vector::sub(&f0, s_eq);
    Linearization { a, b, drift }
}

/// Infinite-horizon discrete LQR: minimizes `Σ (sᵀQs + uᵀRu)` for
/// `s' = As + Bu`, returning the gain `K` of the optimal law `u = −Ks`.
///
/// Solved by iterating the Riccati difference equation
/// `P ← Q + Aᵀ(P − PB(R + BᵀPB)⁻¹BᵀP)A` from `P = Q` until the update
/// falls below `1e-10` (or 10 000 iterations).
///
/// # Errors
///
/// [`SynthesizeLqrError::Singular`] when `R + BᵀPB` becomes singular;
/// [`SynthesizeLqrError::NotConverged`] for unstabilizable pairs.
///
/// # Panics
///
/// Panics on dimension mismatches among `A`, `B`, `Q`, `R`.
pub fn dlqr(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<Matrix, SynthesizeLqrError> {
    let n = a.rows();
    let m = b.cols();
    assert_eq!(a.cols(), n, "A must be square");
    assert_eq!(b.rows(), n, "B row count must match A");
    assert_eq!(q.shape(), (n, n), "Q must be n x n");
    assert_eq!(r.shape(), (m, m), "R must be m x m");

    let bt = b.transpose();
    let mut p = q.clone();
    for _ in 0..10_000 {
        // K = (R + BᵀPB)⁻¹ BᵀPA
        let btp = bt.matmul(&p);
        let gram = {
            let mut g = btp.matmul(b);
            g.axpy(1.0, r);
            g
        };
        let k = inverse(&gram)?.matmul(&btp).matmul(a);
        // P' = Q + Kᵀ R K + (A − BK)ᵀ P (A − BK)
        let a_cl = {
            let mut acl = a.clone();
            acl.axpy(-1.0, &b.matmul(&k));
            acl
        };
        let mut p_next = q.clone();
        p_next.axpy(1.0, &k.transpose().matmul(r).matmul(&k));
        p_next.axpy(1.0, &a_cl.transpose().matmul(&p).matmul(&a_cl));

        let diff = (&p_next - &p).max_abs();
        let scale = p_next.max_abs().max(1.0);
        if !diff.is_finite() || !scale.is_finite() {
            return Err(SynthesizeLqrError::NotConverged { residual: diff });
        }
        p = p_next;
        if diff <= 1e-10 * scale {
            let btp = bt.matmul(&p);
            let gram = {
                let mut g = btp.matmul(b);
                g.axpy(1.0, r);
                g
            };
            return Ok(inverse(&gram)?.matmul(&btp).matmul(a));
        }
    }
    Err(SynthesizeLqrError::NotConverged { residual: f64::NAN })
}

/// Convenience: linearize `sys` at the origin and synthesize the LQR
/// controller `u = −K s` for diagonal weights.
///
/// # Errors
///
/// Propagates [`dlqr`] failures.
///
/// # Panics
///
/// Panics if the weight slices do not match the plant's dimensions or
/// contain non-positive entries.
pub fn lqr_controller(
    sys: &dyn Dynamics,
    state_weights: &[f64],
    control_weights: &[f64],
    label: &str,
) -> Result<LinearFeedbackController, SynthesizeLqrError> {
    assert_eq!(
        state_weights.len(),
        sys.state_dim(),
        "state weight length mismatch"
    );
    assert_eq!(
        control_weights.len(),
        sys.control_dim(),
        "control weight length mismatch"
    );
    assert!(
        state_weights.iter().all(|&w| w > 0.0),
        "state weights must be positive"
    );
    assert!(
        control_weights.iter().all(|&w| w > 0.0),
        "control weights must be positive"
    );
    let s_eq = vec![0.0; sys.state_dim()];
    let u_eq = vec![0.0; sys.control_dim()];
    let lin = linearize(sys, &s_eq, &u_eq);
    let q = Matrix::from_fn(sys.state_dim(), sys.state_dim(), |i, j| {
        if i == j {
            state_weights[i]
        } else {
            0.0
        }
    });
    let r = Matrix::from_fn(sys.control_dim(), sys.control_dim(), |i, j| {
        if i == j {
            control_weights[i]
        } else {
            0.0
        }
    });
    let k = dlqr(&lin.a, &lin.b, &q, &r)?;
    Ok(LinearFeedbackController::with_name(k, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Controller;
    use cocktail_env::systems::{CartPole, VanDerPol};
    use cocktail_math::linalg::spectral_radius;

    #[test]
    fn linearize_vdp_matches_analytic_jacobian() {
        let sys = VanDerPol::new();
        let lin = linearize(&sys, &[0.0, 0.0], &[0.0]);
        // at the origin: A = [[1, τ], [-τ, 1+τ]], B = [0, τ]ᵀ
        let tau = 0.05;
        assert!((lin.a[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((lin.a[(0, 1)] - tau).abs() < 1e-6);
        assert!((lin.a[(1, 0)] + tau).abs() < 1e-6);
        assert!((lin.a[(1, 1)] - (1.0 + tau)).abs() < 1e-6);
        assert!(lin.b[(0, 0)].abs() < 1e-6);
        assert!((lin.b[(1, 0)] - tau).abs() < 1e-6);
    }

    #[test]
    fn linearize_detects_equilibrium_drift() {
        let sys = VanDerPol::new();
        // not an equilibrium: drift must be non-zero
        let lin = linearize(&sys, &[1.0, 0.5], &[0.0]);
        assert!(cocktail_math::vector::norm_2(&lin.drift) > 1e-3);
    }

    #[test]
    fn dlqr_stabilizes_double_integrator() {
        // s' = [[1, 0.1], [0, 1]] s + [0.005, 0.1]ᵀ u
        let a = Matrix::from_rows(vec![vec![1.0, 0.1], vec![0.0, 1.0]]);
        let b = Matrix::from_rows(vec![vec![0.005], vec![0.1]]);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(vec![vec![1.0]]);
        let k = dlqr(&a, &b, &q, &r).expect("stabilizable");
        let mut a_cl = a.clone();
        a_cl.axpy(-1.0, &b.matmul(&k));
        assert!(
            spectral_radius(&a_cl) < 1.0,
            "closed loop must be Schur stable"
        );
    }

    #[test]
    fn dlqr_gain_grows_with_state_weight() {
        let a = Matrix::from_rows(vec![vec![1.0, 0.1], vec![0.0, 1.0]]);
        let b = Matrix::from_rows(vec![vec![0.005], vec![0.1]]);
        let r = Matrix::from_rows(vec![vec![1.0]]);
        let k_soft = dlqr(&a, &b, &Matrix::identity(2), &r).expect("ok");
        let k_hard = dlqr(&a, &b, &(&Matrix::identity(2) * 100.0), &r).expect("ok");
        assert!(k_hard.frobenius_norm() > k_soft.frobenius_norm());
    }

    #[test]
    fn lqr_stabilizes_cartpole_simulation() {
        let sys = CartPole::new();
        let controller =
            lqr_controller(&sys, &[1.0, 1.0, 10.0, 1.0], &[0.1], "lqr-cartpole").expect("ok");
        // simulate from a tilted start: the pole must stay up
        let mut s = vec![0.1, 0.0, 0.1, 0.0];
        for _ in 0..400 {
            let u = sys.clip_control(&controller.control(&s));
            s = sys.step(&s, &u, &[]);
            assert!(sys.is_safe(&s), "LQR lost the pole at {s:?}");
        }
        assert!(
            s[2].abs() < 0.05,
            "pole should be nearly upright, got {s:?}"
        );
    }

    #[test]
    fn lqr_stabilizes_vdp_simulation() {
        let sys = VanDerPol::new();
        let controller = lqr_controller(&sys, &[1.0, 1.0], &[0.5], "lqr-vdp").expect("ok");
        let mut s = vec![1.5, 1.5];
        for _ in 0..300 {
            let u = sys.clip_control(&controller.control(&s));
            s = sys.step(&s, &u, &[0.0]);
        }
        assert!(
            cocktail_math::vector::norm_2(&s) < 0.2,
            "VdP not regulated: {s:?}"
        );
    }

    #[test]
    fn unstabilizable_pair_is_rejected() {
        // B = 0: nothing to control, and A is unstable
        let a = Matrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 2.0]]);
        let b = Matrix::from_rows(vec![vec![0.0], vec![0.0]]);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(vec![vec![1.0]]);
        let result = dlqr(&a, &b, &q, &r);
        assert!(result.is_err(), "uncontrollable system must not converge");
    }
}
