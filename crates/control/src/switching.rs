//! Discrete switching adaptation — the paper's baseline `A_S` \[4\].
//!
//! A switching controller activates exactly one expert per step. The paper
//! compares against the energy-efficient switching method of Wang et al.
//! (ICCAD 2020): switch to the cheapest expert whose predicted behaviour
//! keeps the system safe. [`GreedySelector`] implements that model-based
//! rule with a k-step lookahead; an RL-trained selector (categorical
//! policy) is produced by `cocktail-rl` and plugged in through
//! [`FnSelector`].

use crate::controller::Controller;
use cocktail_env::Dynamics;
use cocktail_math::BoxRegion;
use std::sync::Arc;

/// Chooses which expert is active for an observed state.
pub trait Selector: Send + Sync {
    /// Returns the index of the expert to activate.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `experts` is empty or the returned
    /// index would be out of bounds (callers pass the same expert list the
    /// controller owns).
    fn select(&self, s: &[f64], experts: &[Arc<dyn Controller>]) -> usize;
}

/// A [`Selector`] wrapping a plain function (used for RL-trained selectors).
pub struct FnSelector<F>(pub F);

impl<F> Selector for FnSelector<F>
where
    F: Fn(&[f64]) -> usize + Send + Sync,
{
    fn select(&self, s: &[f64], experts: &[Arc<dyn Controller>]) -> usize {
        let i = (self.0)(s);
        assert!(i < experts.len(), "selector index out of bounds");
        i
    }
}

/// Model-based greedy selector: simulate each expert `lookahead` steps
/// ahead (no disturbance) and pick the cheapest expert among those that
/// stay safe; if none stays safe, pick the one that survives longest.
pub struct GreedySelector {
    dynamics: Arc<dyn Dynamics>,
    lookahead: usize,
}

impl GreedySelector {
    /// Creates a greedy selector with the given lookahead depth.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead == 0`.
    pub fn new(dynamics: Arc<dyn Dynamics>, lookahead: usize) -> Self {
        assert!(lookahead > 0, "lookahead must be at least one step");
        Self {
            dynamics,
            lookahead,
        }
    }

    /// Simulates `expert` from `s` and returns `(steps survived, energy)`.
    fn probe(&self, s: &[f64], expert: &dyn Controller) -> (usize, f64) {
        let mut state = s.to_vec();
        let omega = vec![0.0; self.dynamics.disturbance_dim()];
        let mut energy = 0.0;
        for t in 0..self.lookahead {
            let u = self.dynamics.clip_control(&expert.control(&state));
            energy += cocktail_math::vector::norm_1(&u);
            state = self.dynamics.step(&state, &u, &omega);
            if !self.dynamics.is_safe(&state) {
                return (t + 1, energy);
            }
        }
        (self.lookahead + 1, energy)
    }
}

impl Selector for GreedySelector {
    #[allow(
        clippy::expect_used,
        reason = "probes is non-empty: an empty expert list is rejected on entry"
    )]
    fn select(&self, s: &[f64], experts: &[Arc<dyn Controller>]) -> usize {
        assert!(!experts.is_empty(), "switching needs at least one expert");
        let probes: Vec<(usize, f64)> = experts.iter().map(|e| self.probe(s, e.as_ref())).collect();
        let all_safe = probes.iter().all(|&(t, _)| t > self.lookahead);
        if all_safe {
            // cheapest expert
            probes
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                .map(|(i, _)| i)
                .expect("non-empty")
        } else {
            // longest-surviving expert (ties broken by energy)
            probes
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.total_cmp(&a.1 .1)))
                .map(|(i, _)| i)
                .expect("non-empty")
        }
    }
}

/// The switching controller `A_S`: `u = κ_{σ(s)}(s)`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cocktail_control::{Controller, FnSelector, LinearFeedbackController, SwitchingController};
/// use cocktail_math::Matrix;
///
/// let weak: Arc<dyn Controller> = Arc::new(
///     LinearFeedbackController::new(Matrix::from_rows(vec![vec![1.0, 1.0]])));
/// let strong: Arc<dyn Controller> = Arc::new(
///     LinearFeedbackController::new(Matrix::from_rows(vec![vec![5.0, 5.0]])));
/// // use the strong expert far from the origin
/// let selector = FnSelector(|s: &[f64]| usize::from(s[0].abs() > 1.0));
/// let a_s = SwitchingController::new(vec![weak, strong], Arc::new(selector));
/// assert_eq!(a_s.control(&[0.5, 0.0]), vec![-0.5]);
/// assert_eq!(a_s.control(&[1.5, 0.0]), vec![-7.5]);
/// ```
pub struct SwitchingController {
    experts: Vec<Arc<dyn Controller>>,
    selector: Arc<dyn Selector>,
    label: String,
}

impl SwitchingController {
    /// Creates a switching controller over `experts`.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty or the experts disagree on dimensions.
    pub fn new(experts: Vec<Arc<dyn Controller>>, selector: Arc<dyn Selector>) -> Self {
        Self::with_name(experts, selector, "A_S")
    }

    /// Creates a switching controller with a custom label.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty or the experts disagree on dimensions.
    pub fn with_name(
        experts: Vec<Arc<dyn Controller>>,
        selector: Arc<dyn Selector>,
        label: impl Into<String>,
    ) -> Self {
        assert!(!experts.is_empty(), "switching needs at least one expert");
        let sd = experts[0].state_dim();
        let cd = experts[0].control_dim();
        assert!(
            experts
                .iter()
                .all(|e| e.state_dim() == sd && e.control_dim() == cd),
            "expert dimensions mismatch"
        );
        Self {
            experts,
            selector,
            label: label.into(),
        }
    }

    /// The experts being switched among.
    pub fn experts(&self) -> &[Arc<dyn Controller>] {
        &self.experts
    }

    /// The index the selector would choose for `s` (diagnostics).
    pub fn active_expert(&self, s: &[f64]) -> usize {
        self.selector.select(s, &self.experts)
    }
}

impl Controller for SwitchingController {
    fn control(&self, s: &[f64]) -> Vec<f64> {
        let i = self.selector.select(s, &self.experts);
        self.experts[i].control(s)
    }

    fn state_dim(&self) -> usize {
        self.experts[0].state_dim()
    }

    fn control_dim(&self) -> usize {
        self.experts[0].control_dim()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
        // Switching is discontinuous at the switching surfaces; no global
        // Lipschitz constant exists in general (Table I writes "-").
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearFeedbackController;
    use cocktail_env::systems::VanDerPol;
    use cocktail_math::Matrix;

    fn experts() -> Vec<Arc<dyn Controller>> {
        vec![
            Arc::new(LinearFeedbackController::with_name(
                Matrix::from_rows(vec![vec![0.5, 0.5]]),
                "weak",
            )),
            Arc::new(LinearFeedbackController::with_name(
                Matrix::from_rows(vec![vec![6.0, 6.0]]),
                "strong",
            )),
        ]
    }

    #[test]
    fn greedy_prefers_cheap_expert_when_both_safe() {
        let sys = Arc::new(VanDerPol::new());
        let sel = GreedySelector::new(sys, 5);
        let e = experts();
        // near the origin both experts are safe; the weak one is cheaper
        assert_eq!(sel.select(&[0.1, 0.1], &e), 0);
    }

    #[test]
    fn greedy_prefers_surviving_expert_near_boundary() {
        let sys = Arc::new(VanDerPol::new());
        let sel = GreedySelector::new(sys, 10);
        let e = experts();
        // large upward velocity near the s₂ boundary: the weak expert lets
        // s₂ keep growing past 2 while the strong one damps it in time
        let s = [0.0, 1.9];
        let choice = sel.select(&s, &e);
        assert_eq!(choice, 1, "must pick the strong expert near the boundary");
    }

    #[test]
    fn switching_controller_dispatches() {
        let sel = FnSelector(|s: &[f64]| usize::from(s[0] > 0.0));
        let sw = SwitchingController::new(experts(), Arc::new(sel));
        assert_eq!(sw.active_expert(&[-1.0, 0.0]), 0);
        assert_eq!(sw.active_expert(&[1.0, 0.0]), 1);
        assert_eq!(sw.control(&[1.0, 0.0]), vec![-6.0]);
        assert!(sw.lipschitz(&BoxRegion::cube(2, -1.0, 1.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_experts_panic() {
        SwitchingController::new(Vec::new(), Arc::new(FnSelector(|_: &[f64]| 0)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_selector_panics() {
        let sw = SwitchingController::new(experts(), Arc::new(FnSelector(|_: &[f64]| 7)));
        sw.control(&[0.0, 0.0]);
    }
}
