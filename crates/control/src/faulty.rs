//! A fault-injecting wrapper around any expert controller.
//!
//! [`FaultyExpert`] decorates a [`Controller`] with a deterministic
//! [`FaultInjector`]: sensor faults corrupt the state the inner expert
//! observes, output faults corrupt what it returns. The injector's step
//! clock is the wrapper's own call counter, so a fresh wrapper replays the
//! same fault schedule on every episode.
//!
//! Determinism note: the wrapper carries mutable fault state (the call
//! counter and stuck-at memory) behind a mutex. For parallel evaluation
//! under the workspace's bit-for-bit worker-count-invariance contract,
//! construct one `FaultyExpert` *per episode* — a wrapper shared across
//! concurrently simulated episodes would interleave their call counters
//! nondeterministically.

use crate::controller::Controller;
use cocktail_env::fault::{FaultInjector, FaultPlan};
use cocktail_math::BoxRegion;
use std::sync::{Arc, Mutex, PoisonError};

/// An expert whose observations and outputs pass through a fault injector.
pub struct FaultyExpert {
    inner: Arc<dyn Controller>,
    state: Mutex<(FaultInjector, usize)>,
    label: String,
}

impl FaultyExpert {
    /// Wraps `inner` with the fault schedule `plan`; `seed` drives the
    /// sensor-spike randomness.
    pub fn new(inner: Arc<dyn Controller>, plan: FaultPlan, seed: u64) -> Self {
        let label = format!("faulty({})", inner.name());
        Self {
            inner,
            state: Mutex::new((FaultInjector::new(plan, seed), 0)),
            label,
        }
    }

    /// The wrapped expert.
    pub fn inner(&self) -> &Arc<dyn Controller> {
        &self.inner
    }

    /// Calls served so far (the injector's step clock).
    pub fn calls(&self) -> usize {
        self.lock().1
    }

    /// Rewinds the fault schedule to step 0 and clears stuck-at memory
    /// (start of a new episode when reusing a wrapper sequentially).
    pub fn reset(&self) {
        let mut guard = self.lock();
        guard.0.reset();
        guard.1 = 0;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (FaultInjector, usize)> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Controller for FaultyExpert {
    fn control(&self, s: &[f64]) -> Vec<f64> {
        let mut guard = self.lock();
        let (injector, t) = &mut *guard;
        let observed = injector.sensor(*t, s);
        let healthy = self.inner.control(&observed);
        let out = injector.output(*t, &healthy);
        *t += 1;
        out
    }

    fn state_dim(&self) -> usize {
        self.inner.state_dim()
    }

    fn control_dim(&self) -> usize {
        self.inner.control_dim()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
        // injected discontinuities (dropout, stuck-at, spikes) void any
        // Lipschitz bound of the wrapped expert
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearFeedbackController;
    use cocktail_env::fault::FaultKind;
    use cocktail_math::Matrix;

    fn expert() -> Arc<dyn Controller> {
        Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
            vec![2.0, 1.0],
        ])))
    }

    #[test]
    fn empty_plan_is_transparent() {
        let faulty = FaultyExpert::new(expert(), FaultPlan::none(), 0);
        assert_eq!(faulty.control(&[1.0, 1.0]), expert().control(&[1.0, 1.0]));
        assert_eq!(faulty.state_dim(), 2);
        assert_eq!(faulty.control_dim(), 1);
        assert!(faulty.name().starts_with("faulty("));
        assert!(faulty.lipschitz(&BoxRegion::cube(2, -1.0, 1.0)).is_none());
    }

    #[test]
    fn windowed_dropout_follows_the_call_clock() {
        let faulty = FaultyExpert::new(
            expert(),
            FaultPlan::window(FaultKind::Dropout, 1, Some(2)),
            0,
        );
        assert_ne!(faulty.control(&[1.0, 1.0]), vec![0.0]); // call 0 healthy
        assert_eq!(faulty.control(&[1.0, 1.0]), vec![0.0]); // call 1 dropped
        assert_ne!(faulty.control(&[1.0, 1.0]), vec![0.0]); // call 2 healthy
        assert_eq!(faulty.calls(), 3);
    }

    #[test]
    fn reset_replays_the_schedule() {
        let faulty = FaultyExpert::new(
            expert(),
            FaultPlan::window(FaultKind::NanOutput, 0, Some(1)),
            0,
        );
        assert!(faulty.control(&[1.0, 1.0])[0].is_nan());
        assert!(!faulty.control(&[1.0, 1.0])[0].is_nan());
        faulty.reset();
        assert!(faulty.control(&[1.0, 1.0])[0].is_nan());
    }

    #[test]
    fn sensor_spike_corrupts_what_the_expert_sees() {
        let faulty = FaultyExpert::new(
            expert(),
            FaultPlan::permanent(FaultKind::SensorSpike { magnitude: 10.0 }),
            5,
        );
        let healthy = expert().control(&[0.0, 0.0]);
        let seen = faulty.control(&[0.0, 0.0]);
        // -K(s+δ) with ‖δ‖=10 must differ from -K·s
        assert_ne!(seen, healthy);
    }

    #[test]
    fn same_plan_and_seed_replay_identically() {
        let run = || {
            let faulty = FaultyExpert::new(expert(), FaultPlan::random(9, 50, 4), 9);
            (0..50)
                .map(|i| {
                    faulty
                        .control(&[i as f64 * 0.01, -0.5])
                        .iter()
                        .map(|u| u.to_bits()) // NaN-safe bit-exact comparison
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
