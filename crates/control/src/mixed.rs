//! Adaptive mixing of experts — the paper's `A_W` (Eq. 4).

use crate::controller::Controller;
use cocktail_math::{vector, BoxRegion};
use cocktail_nn::Mlp;
use std::sync::Arc;

/// Produces the per-expert weight vector `a(s) ∈ [-A_B, A_B]ⁿ` for a state.
///
/// The paper learns this mapping with PPO; `cocktail-rl` trains an [`Mlp`]
/// policy and wraps it in [`TanhWeightPolicy`]. Constant and hand-written
/// policies are useful for tests and ablations.
pub trait WeightPolicy: Send + Sync {
    /// Weight vector for the observed state (one entry per expert).
    fn weights(&self, s: &[f64]) -> Vec<f64>;

    /// Number of experts this policy weighs.
    fn expert_count(&self) -> usize;
}

/// A constant weight assignment (e.g. the `\[1, 0, …\]` policy equals expert 0;
/// `[1/n, …, 1/n]` is the uniform ensemble).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantWeights(pub Vec<f64>);

impl WeightPolicy for ConstantWeights {
    fn weights(&self, _s: &[f64]) -> Vec<f64> {
        self.0.clone()
    }

    fn expert_count(&self) -> usize {
        self.0.len()
    }
}

/// A neural weight policy `a(s) = A_B · tanh-net(s)`: the network's `Tanh`
/// output layer keeps each weight inside `[-A_B, A_B]` by construction,
/// matching the paper's bounded action space (`A_B ≥ 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct TanhWeightPolicy {
    net: Mlp,
    bound: f64,
}

impl TanhWeightPolicy {
    /// Wraps a policy network whose outputs lie in `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 1.0` (the paper requires `A_B ≥ 1` so that any
    /// single expert is representable).
    pub fn new(net: Mlp, bound: f64) -> Self {
        assert!(bound >= 1.0, "weight bound must be at least 1");
        Self { net, bound }
    }

    /// The policy network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The weight bound `A_B`.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

impl WeightPolicy for TanhWeightPolicy {
    fn weights(&self, s: &[f64]) -> Vec<f64> {
        self.net
            .forward(s)
            .iter()
            .map(|a| self.bound * a.tanh())
            .collect()
    }

    fn expert_count(&self) -> usize {
        self.net.output_dim()
    }
}

/// The mixed controller `A_W`:
/// `u = clip(Σᵢ aᵢ(s) · κᵢ(s), U_inf, U_sup)` (paper Eq. 4).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cocktail_control::{ConstantWeights, Controller, LinearFeedbackController, MixedController};
/// use cocktail_math::Matrix;
///
/// let e1: Arc<dyn Controller> = Arc::new(
///     LinearFeedbackController::new(Matrix::from_rows(vec![vec![1.0, 0.0]])));
/// let e2: Arc<dyn Controller> = Arc::new(
///     LinearFeedbackController::new(Matrix::from_rows(vec![vec![0.0, 1.0]])));
/// let mixed = MixedController::new(
///     vec![e1, e2],
///     Arc::new(ConstantWeights(vec![0.5, 2.0])),
///     vec![-20.0], vec![20.0],
/// );
/// // u = clip(0.5·(-s₁) + 2.0·(-s₂))
/// assert_eq!(mixed.control(&[2.0, 1.0]), vec![-3.0]);
/// ```
pub struct MixedController {
    experts: Vec<Arc<dyn Controller>>,
    policy: Arc<dyn WeightPolicy>,
    u_inf: Vec<f64>,
    u_sup: Vec<f64>,
    label: String,
}

impl MixedController {
    /// Creates the mixed controller.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty, expert dimensions disagree, the policy
    /// weighs a different number of experts, or the clip bounds have the
    /// wrong length.
    pub fn new(
        experts: Vec<Arc<dyn Controller>>,
        policy: Arc<dyn WeightPolicy>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
    ) -> Self {
        Self::with_name(experts, policy, u_inf, u_sup, "A_W")
    }

    /// Creates the mixed controller with a custom label.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_name(
        experts: Vec<Arc<dyn Controller>>,
        policy: Arc<dyn WeightPolicy>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
        label: impl Into<String>,
    ) -> Self {
        assert!(!experts.is_empty(), "mixing needs at least one expert");
        let sd = experts[0].state_dim();
        let cd = experts[0].control_dim();
        assert!(
            experts
                .iter()
                .all(|e| e.state_dim() == sd && e.control_dim() == cd),
            "expert dimensions mismatch"
        );
        assert_eq!(
            policy.expert_count(),
            experts.len(),
            "policy/expert count mismatch"
        );
        assert_eq!(u_inf.len(), cd, "u_inf length mismatch");
        assert_eq!(u_sup.len(), cd, "u_sup length mismatch");
        Self {
            experts,
            policy,
            u_inf,
            u_sup,
            label: label.into(),
        }
    }

    /// The experts being mixed.
    pub fn experts(&self) -> &[Arc<dyn Controller>] {
        &self.experts
    }

    /// The adaptive weight policy.
    pub fn policy(&self) -> &Arc<dyn WeightPolicy> {
        &self.policy
    }

    /// The weights the policy assigns at `s` (diagnostics / distillation).
    pub fn weights_at(&self, s: &[f64]) -> Vec<f64> {
        self.policy.weights(s)
    }

    /// The *unclipped* mixture `Σ aᵢ κᵢ(s)`.
    pub fn raw_control(&self, s: &[f64]) -> Vec<f64> {
        let a = self.policy.weights(s);
        assert_eq!(a.len(), self.experts.len(), "weight count mismatch");
        let mut u = vec![0.0; self.control_dim()];
        for (ai, expert) in a.iter().zip(&self.experts) {
            vector::axpy_inplace(&mut u, *ai, &expert.control(s));
        }
        u
    }
}

impl Controller for MixedController {
    fn control(&self, s: &[f64]) -> Vec<f64> {
        vector::clip(&self.raw_control(s), &self.u_inf, &self.u_sup)
    }

    fn state_dim(&self) -> usize {
        self.experts[0].state_dim()
    }

    fn control_dim(&self) -> usize {
        self.experts[0].control_dim()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
        // The composition of the weight network with the experts has no
        // tractable product bound (weights multiply expert outputs), and
        // the paper marks A_W with "-"; we do the same.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearFeedbackController;
    use cocktail_math::Matrix;
    use cocktail_nn::{Activation, MlpBuilder};

    fn experts() -> Vec<Arc<dyn Controller>> {
        vec![
            Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
                vec![1.0, 0.0],
            ]))),
            Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
                vec![0.0, 1.0],
            ]))),
        ]
    }

    #[test]
    fn constant_weights_reproduce_single_expert() {
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![1.0, 0.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert_eq!(mixed.control(&[3.0, 5.0]), vec![-3.0]);
    }

    #[test]
    fn weights_can_exceed_convex_hull() {
        // the action space allows negative and >1 weights — a super-space
        // of both switching and convex combinations
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![-1.0, 2.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert_eq!(mixed.control(&[1.0, 1.0]), vec![1.0 - 2.0]);
    }

    #[test]
    fn clip_applies() {
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![100.0, 100.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert_eq!(mixed.control(&[-1.0, -1.0]), vec![20.0]);
        assert_eq!(mixed.raw_control(&[-1.0, -1.0]), vec![200.0]);
    }

    #[test]
    fn tanh_policy_bounds_weights() {
        let net = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(2, Activation::Identity)
            .seed(0)
            .build();
        let policy = TanhWeightPolicy::new(net, 2.0);
        for s in [[0.0, 0.0], [100.0, -100.0], [3.0, 1.0]] {
            let w = policy.weights(&s);
            assert_eq!(w.len(), 2);
            assert!(w.iter().all(|a| a.abs() <= 2.0));
        }
        assert_eq!(policy.bound(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_bound_panics() {
        let net = MlpBuilder::new(2).output(2, Activation::Identity).build();
        TanhWeightPolicy::new(net, 0.5);
    }

    #[test]
    #[should_panic(expected = "policy/expert count")]
    fn policy_count_mismatch_panics() {
        MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![1.0])),
            vec![-20.0],
            vec![20.0],
        );
    }

    #[test]
    fn mixed_has_no_lipschitz() {
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![1.0, 1.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert!(mixed.lipschitz(&BoxRegion::cube(2, -1.0, 1.0)).is_none());
        assert_eq!(mixed.name(), "A_W");
    }
}
