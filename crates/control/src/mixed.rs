//! Adaptive mixing of experts — the paper's `A_W` (Eq. 4), with optional
//! graceful degradation (expert quarantine) under faults.

use crate::controller::Controller;
use crate::degradation::{
    DegradationConfig, DegradationEvent, DegradationMonitor, DegradationReason,
};
use cocktail_math::{vector, BoxRegion};
use cocktail_nn::Mlp;
use cocktail_obs::{Event, NullSink, Telemetry};
use std::sync::Arc;

/// Produces the per-expert weight vector `a(s) ∈ [-A_B, A_B]ⁿ` for a state.
///
/// The paper learns this mapping with PPO; `cocktail-rl` trains an [`Mlp`]
/// policy and wraps it in [`TanhWeightPolicy`]. Constant and hand-written
/// policies are useful for tests and ablations.
pub trait WeightPolicy: Send + Sync {
    /// Weight vector for the observed state (one entry per expert).
    fn weights(&self, s: &[f64]) -> Vec<f64>;

    /// Number of experts this policy weighs.
    fn expert_count(&self) -> usize;
}

/// A constant weight assignment (e.g. the `\[1, 0, …\]` policy equals expert 0;
/// `[1/n, …, 1/n]` is the uniform ensemble).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantWeights(pub Vec<f64>);

impl WeightPolicy for ConstantWeights {
    fn weights(&self, _s: &[f64]) -> Vec<f64> {
        self.0.clone()
    }

    fn expert_count(&self) -> usize {
        self.0.len()
    }
}

/// A neural weight policy `a(s) = A_B · tanh-net(s)`: the network's `Tanh`
/// output layer keeps each weight inside `[-A_B, A_B]` by construction,
/// matching the paper's bounded action space (`A_B ≥ 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct TanhWeightPolicy {
    net: Mlp,
    bound: f64,
}

impl TanhWeightPolicy {
    /// Wraps a policy network whose outputs lie in `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 1.0` (the paper requires `A_B ≥ 1` so that any
    /// single expert is representable).
    pub fn new(net: Mlp, bound: f64) -> Self {
        assert!(bound >= 1.0, "weight bound must be at least 1");
        Self { net, bound }
    }

    /// The policy network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The weight bound `A_B`.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

impl WeightPolicy for TanhWeightPolicy {
    fn weights(&self, s: &[f64]) -> Vec<f64> {
        self.net
            .forward(s)
            .iter()
            .map(|a| self.bound * a.tanh())
            .collect()
    }

    fn expert_count(&self) -> usize {
        self.net.output_dim()
    }
}

/// The mixed controller `A_W`:
/// `u = clip(Σᵢ aᵢ(s) · κᵢ(s), U_inf, U_sup)` (paper Eq. 4).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cocktail_control::{ConstantWeights, Controller, LinearFeedbackController, MixedController};
/// use cocktail_math::Matrix;
///
/// let e1: Arc<dyn Controller> = Arc::new(
///     LinearFeedbackController::new(Matrix::from_rows(vec![vec![1.0, 0.0]])));
/// let e2: Arc<dyn Controller> = Arc::new(
///     LinearFeedbackController::new(Matrix::from_rows(vec![vec![0.0, 1.0]])));
/// let mixed = MixedController::new(
///     vec![e1, e2],
///     Arc::new(ConstantWeights(vec![0.5, 2.0])),
///     vec![-20.0], vec![20.0],
/// );
/// // u = clip(0.5·(-s₁) + 2.0·(-s₂))
/// assert_eq!(mixed.control(&[2.0, 1.0]), vec![-3.0]);
/// ```
pub struct MixedController {
    experts: Vec<Arc<dyn Controller>>,
    policy: Arc<dyn WeightPolicy>,
    u_inf: Vec<f64>,
    u_sup: Vec<f64>,
    label: String,
    monitor: Option<DegradationMonitor>,
    tel: Arc<dyn Telemetry>,
}

impl MixedController {
    /// Creates the mixed controller.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is empty, expert dimensions disagree, the policy
    /// weighs a different number of experts, or the clip bounds have the
    /// wrong length.
    pub fn new(
        experts: Vec<Arc<dyn Controller>>,
        policy: Arc<dyn WeightPolicy>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
    ) -> Self {
        Self::with_name(experts, policy, u_inf, u_sup, "A_W")
    }

    /// Creates the mixed controller with a custom label.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_name(
        experts: Vec<Arc<dyn Controller>>,
        policy: Arc<dyn WeightPolicy>,
        u_inf: Vec<f64>,
        u_sup: Vec<f64>,
        label: impl Into<String>,
    ) -> Self {
        assert!(!experts.is_empty(), "mixing needs at least one expert");
        let sd = experts[0].state_dim();
        let cd = experts[0].control_dim();
        assert!(
            experts
                .iter()
                .all(|e| e.state_dim() == sd && e.control_dim() == cd),
            "expert dimensions mismatch"
        );
        assert_eq!(
            policy.expert_count(),
            experts.len(),
            "policy/expert count mismatch"
        );
        assert_eq!(u_inf.len(), cd, "u_inf length mismatch");
        assert_eq!(u_sup.len(), cd, "u_sup length mismatch");
        Self {
            experts,
            policy,
            u_inf,
            u_sup,
            label: label.into(),
            monitor: None,
            tel: Arc::new(NullSink),
        }
    }

    /// Attaches a telemetry sink: every quarantine fires a
    /// `quarantine.events` counter and a `quarantine.fired` point naming
    /// the expert and reason.
    ///
    /// Only attach a sink to controllers driven *sequentially* (an
    /// interactive drill, a single rollout). Controllers shared across
    /// parallel evaluation workers must stay on the default [`NullSink`]
    /// and report via the drained [`Self::degradation_events`] log instead,
    /// or the event stream becomes scheduling-dependent (see the
    /// `cocktail_obs` determinism contract).
    #[must_use]
    pub fn with_telemetry(mut self, tel: Arc<dyn Telemetry>) -> Self {
        self.tel = tel;
        self
    }

    /// Enables graceful degradation: at control time each expert's output is
    /// checked for non-finite values and gross range excursions; offenders
    /// are quarantined (weight zeroed, remaining weights renormalized to
    /// preserve the total absolute weight) for `config.cooldown` calls, and
    /// every offense is logged as a [`DegradationEvent`].
    ///
    /// Without this call the controller runs the exact legacy mixing
    /// arithmetic — the guarded path is strictly opt-in.
    #[must_use]
    pub fn with_degradation(mut self, config: DegradationConfig) -> Self {
        self.monitor = Some(DegradationMonitor::new(config, self.experts.len()));
        self
    }

    /// Whether degradation monitoring is enabled.
    pub fn is_monitored(&self) -> bool {
        self.monitor.is_some()
    }

    /// A copy of the degradation events recorded so far (empty when
    /// monitoring is disabled).
    pub fn degradation_events(&self) -> Vec<DegradationEvent> {
        self.monitor
            .as_ref()
            .map(DegradationMonitor::events)
            .unwrap_or_default()
    }

    /// Drains and returns the degradation event log.
    pub fn take_degradation_events(&self) -> Vec<DegradationEvent> {
        self.monitor
            .as_ref()
            .map(DegradationMonitor::take_events)
            .unwrap_or_default()
    }

    /// Lifts all quarantines and clears the event log and call clock
    /// (start of a fresh evaluation run).
    pub fn reset_quarantine(&self) {
        if let Some(m) = &self.monitor {
            m.reset();
        }
    }

    /// The guarded mixture: probe each non-quarantined expert, quarantine
    /// offenders, renormalize the surviving weights so the total absolute
    /// weight is preserved, then mix and clip.
    fn degraded_control(&self, monitor: &DegradationMonitor, s: &[f64]) -> Vec<f64> {
        let call = monitor.next_call();
        let a = self.policy.weights(s);
        assert_eq!(a.len(), self.experts.len(), "weight count mismatch");
        let f = monitor.config().margin_factor;
        let (lo, hi): (Vec<f64>, Vec<f64>) = self
            .u_inf
            .iter()
            .zip(&self.u_sup)
            .map(|(&l, &h)| {
                let span = h - l;
                (l - f * span, h + f * span)
            })
            .unzip();

        let mut healthy: Vec<(f64, Vec<f64>)> = Vec::with_capacity(self.experts.len());
        for (i, (ai, expert)) in a.iter().zip(&self.experts).enumerate() {
            if monitor.is_quarantined(i, call) {
                continue;
            }
            let out = expert.control(s);
            let offense = if out.iter().any(|u| !u.is_finite()) {
                Some(DegradationReason::NonFinite)
            } else {
                out.iter()
                    .enumerate()
                    .find(|(j, u)| **u < lo[*j] || **u > hi[*j])
                    .map(|(j, u)| DegradationReason::OutOfRange {
                        value: *u,
                        bound: if *u < lo[j] { lo[j] } else { hi[j] },
                    })
            };
            if let Some(reason) = offense {
                if self.tel.enabled() {
                    self.tel.counter("quarantine.events", 1);
                    let reason_label = match reason {
                        DegradationReason::NonFinite => "non-finite",
                        DegradationReason::OutOfRange { .. } => "out-of-range",
                    };
                    self.tel.record(
                        Event::point("quarantine.fired")
                            .with("call", call)
                            .with("expert", i)
                            .with("expert_name", expert.name())
                            .with("reason", reason_label),
                    );
                }
                monitor.quarantine(call, i, expert.name(), reason);
            } else {
                healthy.push((*ai, out));
            }
        }

        let total_abs: f64 = a.iter().map(|ai| ai.abs()).sum();
        let healthy_abs: f64 = healthy.iter().map(|(ai, _)| ai.abs()).sum();
        let scale = if healthy_abs > 1e-12 {
            total_abs / healthy_abs
        } else {
            1.0
        };
        let mut u = vec![0.0; self.control_dim()];
        for (ai, out) in &healthy {
            vector::axpy_inplace(&mut u, scale * ai, out);
        }
        vector::clip(&u, &self.u_inf, &self.u_sup)
    }

    /// The experts being mixed.
    pub fn experts(&self) -> &[Arc<dyn Controller>] {
        &self.experts
    }

    /// The adaptive weight policy.
    pub fn policy(&self) -> &Arc<dyn WeightPolicy> {
        &self.policy
    }

    /// The weights the policy assigns at `s` (diagnostics / distillation).
    pub fn weights_at(&self, s: &[f64]) -> Vec<f64> {
        self.policy.weights(s)
    }

    /// The *unclipped* mixture `Σ aᵢ κᵢ(s)`.
    pub fn raw_control(&self, s: &[f64]) -> Vec<f64> {
        let a = self.policy.weights(s);
        assert_eq!(a.len(), self.experts.len(), "weight count mismatch");
        let mut u = vec![0.0; self.control_dim()];
        for (ai, expert) in a.iter().zip(&self.experts) {
            vector::axpy_inplace(&mut u, *ai, &expert.control(s));
        }
        u
    }
}

impl Controller for MixedController {
    fn control(&self, s: &[f64]) -> Vec<f64> {
        match &self.monitor {
            None => vector::clip(&self.raw_control(s), &self.u_inf, &self.u_sup),
            Some(monitor) => self.degraded_control(monitor, s),
        }
    }

    fn state_dim(&self) -> usize {
        self.experts[0].state_dim()
    }

    fn control_dim(&self) -> usize {
        self.experts[0].control_dim()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
        // The composition of the weight network with the experts has no
        // tractable product bound (weights multiply expert outputs), and
        // the paper marks A_W with "-"; we do the same.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearFeedbackController;
    use cocktail_math::Matrix;
    use cocktail_nn::{Activation, MlpBuilder};

    fn experts() -> Vec<Arc<dyn Controller>> {
        vec![
            Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
                vec![1.0, 0.0],
            ]))),
            Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
                vec![0.0, 1.0],
            ]))),
        ]
    }

    #[test]
    fn constant_weights_reproduce_single_expert() {
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![1.0, 0.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert_eq!(mixed.control(&[3.0, 5.0]), vec![-3.0]);
    }

    #[test]
    fn weights_can_exceed_convex_hull() {
        // the action space allows negative and >1 weights — a super-space
        // of both switching and convex combinations
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![-1.0, 2.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert_eq!(mixed.control(&[1.0, 1.0]), vec![1.0 - 2.0]);
    }

    #[test]
    fn clip_applies() {
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![100.0, 100.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert_eq!(mixed.control(&[-1.0, -1.0]), vec![20.0]);
        assert_eq!(mixed.raw_control(&[-1.0, -1.0]), vec![200.0]);
    }

    #[test]
    fn tanh_policy_bounds_weights() {
        let net = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(2, Activation::Identity)
            .seed(0)
            .build();
        let policy = TanhWeightPolicy::new(net, 2.0);
        for s in [[0.0, 0.0], [100.0, -100.0], [3.0, 1.0]] {
            let w = policy.weights(&s);
            assert_eq!(w.len(), 2);
            assert!(w.iter().all(|a| a.abs() <= 2.0));
        }
        assert_eq!(policy.bound(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_bound_panics() {
        let net = MlpBuilder::new(2).output(2, Activation::Identity).build();
        TanhWeightPolicy::new(net, 0.5);
    }

    #[test]
    #[should_panic(expected = "policy/expert count")]
    fn policy_count_mismatch_panics() {
        MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![1.0])),
            vec![-20.0],
            vec![20.0],
        );
    }

    struct NanExpert;

    impl Controller for NanExpert {
        fn control(&self, _s: &[f64]) -> Vec<f64> {
            vec![f64::NAN]
        }
        fn state_dim(&self) -> usize {
            2
        }
        fn control_dim(&self) -> usize {
            1
        }
        fn name(&self) -> &str {
            "nan_expert"
        }
        fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
            None
        }
    }

    #[test]
    fn nan_expert_is_quarantined_and_output_stays_finite() {
        let mut experts = experts();
        experts.push(Arc::new(NanExpert));
        let mixed = MixedController::new(
            experts,
            Arc::new(ConstantWeights(vec![1.0, 1.0, 1.0])),
            vec![-20.0],
            vec![20.0],
        )
        .with_degradation(DegradationConfig {
            margin_factor: 1.0,
            cooldown: 100,
        });
        let u = mixed.control(&[1.0, 2.0]);
        // healthy sum is -3; Σ|aᵢ| = 3 over healthy |a| = 2 ⇒ scale 1.5
        assert_eq!(u, vec![-4.5]);
        // quarantined on subsequent calls: no fresh events, still finite
        let u2 = mixed.control(&[1.0, 2.0]);
        assert_eq!(u2, vec![-4.5]);
        let events = mixed.degradation_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].expert, 2);
        assert_eq!(events[0].expert_name, "nan_expert");
        assert_eq!(events[0].reason, DegradationReason::NonFinite);
        assert!(mixed.is_monitored());
    }

    #[test]
    fn quarantine_expires_and_reprobes() {
        let mut experts = experts();
        experts.push(Arc::new(NanExpert));
        let mixed = MixedController::new(
            experts,
            Arc::new(ConstantWeights(vec![1.0, 1.0, 1.0])),
            vec![-20.0],
            vec![20.0],
        )
        .with_degradation(DegradationConfig {
            margin_factor: 1.0,
            cooldown: 1,
        });
        for _ in 0..5 {
            assert!(mixed.control(&[1.0, 1.0]).iter().all(|u| u.is_finite()));
        }
        // calls 0, 2, 4 probe the permanently-broken expert again
        assert_eq!(mixed.degradation_events().len(), 3);
        mixed.reset_quarantine();
        assert!(mixed.degradation_events().is_empty());
    }

    #[test]
    fn monitored_but_healthy_matches_legacy_numbers() {
        let plain = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![0.7, -1.3])),
            vec![-20.0],
            vec![20.0],
        );
        let guarded = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![0.7, -1.3])),
            vec![-20.0],
            vec![20.0],
        )
        .with_degradation(DegradationConfig::default());
        for s in [[0.3, -0.8], [2.0, 1.0], [-1.5, 0.25]] {
            assert_eq!(guarded.control(&s), plain.control(&s));
        }
        assert!(guarded.degradation_events().is_empty());
        assert!(plain.degradation_events().is_empty());
        assert!(!plain.is_monitored());
    }

    #[test]
    fn out_of_range_expert_is_quarantined() {
        let huge: Arc<dyn Controller> =
            Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
                vec![1.0e6, 0.0],
            ])));
        let mut experts = experts();
        experts.push(huge);
        let mixed = MixedController::new(
            experts,
            Arc::new(ConstantWeights(vec![1.0, 1.0, 1.0])),
            vec![-20.0],
            vec![20.0],
        )
        .with_degradation(DegradationConfig::default());
        mixed.control(&[1.0, 0.0]);
        let events = mixed.take_degradation_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].reason,
            DegradationReason::OutOfRange { value, bound } if value == -1.0e6 && bound == -60.0
        ));
        assert!(mixed.degradation_events().is_empty()); // drained
    }

    #[test]
    fn quarantine_reports_through_telemetry() {
        let sink = Arc::new(cocktail_obs::InMemorySink::new());
        let mut experts = experts();
        experts.push(Arc::new(NanExpert));
        let mixed = MixedController::new(
            experts,
            Arc::new(ConstantWeights(vec![1.0, 1.0, 1.0])),
            vec![-20.0],
            vec![20.0],
        )
        .with_degradation(DegradationConfig {
            margin_factor: 1.0,
            cooldown: 100,
        })
        .with_telemetry(sink.clone());
        mixed.control(&[1.0, 2.0]);
        mixed.control(&[1.0, 2.0]); // quarantined: no fresh offense
        assert_eq!(sink.counter_total("quarantine.events"), 1);
        let fired: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.name == "quarantine.fired")
            .collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].field("expert"), Some(&2usize.into()));
        assert_eq!(fired[0].field("reason"), Some(&"non-finite".into()));
    }

    #[test]
    fn all_experts_quarantined_yields_zero_control() {
        let mixed = MixedController::new(
            vec![Arc::new(NanExpert) as Arc<dyn Controller>],
            Arc::new(ConstantWeights(vec![1.0])),
            vec![-20.0],
            vec![20.0],
        )
        .with_degradation(DegradationConfig::default());
        assert_eq!(mixed.control(&[0.0, 0.0]), vec![0.0]);
    }

    #[test]
    fn mixed_has_no_lipschitz() {
        let mixed = MixedController::new(
            experts(),
            Arc::new(ConstantWeights(vec![1.0, 1.0])),
            vec![-20.0],
            vec![20.0],
        );
        assert!(mixed.lipschitz(&BoxRegion::cube(2, -1.0, 1.0)).is_none());
        assert_eq!(mixed.name(), "A_W");
    }
}
