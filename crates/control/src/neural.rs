//! Neural-network controllers.

use crate::controller::Controller;
use cocktail_math::{vector, BoxRegion};
use cocktail_nn::Mlp;
use serde::{Deserialize, Serialize};

/// A neural controller `u = scale ⊙ net(s)`.
///
/// DDPG actors end in a `Tanh` output layer scaled to the control bound;
/// distilled students end in an `Identity` output with `scale = 1`. The
/// wrapper keeps the scaling explicit so the Lipschitz accounting stays
/// exact: `L(κ) = max(scale) · L(net)`.
///
/// # Examples
///
/// ```
/// use cocktail_control::{Controller, NnController};
/// use cocktail_nn::{Activation, MlpBuilder};
///
/// let net = MlpBuilder::new(2).hidden(8, Activation::Tanh)
///     .output(1, Activation::Tanh).seed(0).build();
/// let k = NnController::new(net, vec![20.0]);
/// let u = k.control(&[0.5, -0.5]);
/// assert!(u[0].abs() <= 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnController {
    net: Mlp,
    scale: Vec<f64>,
    label: String,
}

impl NnController {
    /// Wraps a network with per-output scaling.
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != net.output_dim()` or any scale is
    /// non-positive.
    pub fn new(net: Mlp, scale: Vec<f64>) -> Self {
        Self::with_name(net, scale, "nn-controller")
    }

    /// Wraps a network with per-output scaling and a custom label.
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != net.output_dim()` or any scale is
    /// non-positive.
    pub fn with_name(net: Mlp, scale: Vec<f64>, label: impl Into<String>) -> Self {
        assert_eq!(
            scale.len(),
            net.output_dim(),
            "scale length must match network output"
        );
        assert!(scale.iter().all(|&s| s > 0.0), "scales must be positive");
        Self {
            net,
            scale,
            label: label.into(),
        }
    }

    /// Wraps a network without scaling (`scale = 1`).
    pub fn unscaled(net: Mlp, label: impl Into<String>) -> Self {
        let scale = vec![1.0; net.output_dim()];
        Self::with_name(net, scale, label)
    }

    /// The underlying network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access to the underlying network (distillation trains it
    /// in place).
    pub fn network_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// The per-output scale vector.
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// The paper's footnote-1 Lipschitz constant of the scaled network.
    pub fn lipschitz_constant(&self) -> f64 {
        let max_scale = self.scale.iter().fold(0.0_f64, |m, &s| m.max(s));
        max_scale * self.net.lipschitz_constant()
    }
}

impl Controller for NnController {
    fn control(&self, s: &[f64]) -> Vec<f64> {
        let raw = self.net.forward(s);
        raw.iter().zip(&self.scale).map(|(r, sc)| r * sc).collect()
    }

    fn control_batch(&self, states: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if states.is_empty() {
            return Vec::new();
        }
        // one batched forward; rows are bit-identical to per-state calls
        let out = self
            .net
            .forward_batch(&cocktail_math::Matrix::from_rows(states.to_vec()));
        (0..out.rows())
            .map(|r| {
                out.row(r)
                    .iter()
                    .zip(&self.scale)
                    .map(|(y, sc)| y * sc)
                    .collect()
            })
            .collect()
    }

    fn state_dim(&self) -> usize {
        self.net.input_dim()
    }

    fn control_dim(&self) -> usize {
        self.net.output_dim()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
        Some(self.lipschitz_constant())
    }
}

/// Sound output bounds of a scaled network over a box — convenience used
/// by the verification crate.
///
/// # Panics
///
/// Panics if `domain.dim() != controller.state_dim()`.
pub fn output_bounds(
    controller: &NnController,
    domain: &BoxRegion,
) -> Vec<cocktail_math::Interval> {
    controller
        .net
        .bounds(domain)
        .into_iter()
        .zip(&controller.scale)
        .map(|(iv, &s)| iv * s)
        .collect()
}

/// Maximum deviation `‖κ(a) − κ(b)‖₂ / ‖a − b‖₂` over sampled pairs —
/// testing helper mirroring `cocktail_nn::lipschitz::empirical_lower_bound`
/// but including the output scaling.
pub fn empirical_slope(
    controller: &NnController,
    domain: &BoxRegion,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = cocktail_math::rng::seeded(seed);
    let mut best: f64 = 0.0;
    for _ in 0..samples {
        let a = cocktail_math::rng::uniform_in_box(&mut rng, domain);
        let b = cocktail_math::rng::uniform_in_box(&mut rng, domain);
        let dx = vector::norm_2(&vector::sub(&a, &b));
        if dx < 1e-12 {
            continue;
        }
        let dy = vector::norm_2(&vector::sub(
            &controller.control(&a),
            &controller.control(&b),
        ));
        best = best.max(dy / dx);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_nn::{Activation, MlpBuilder};

    fn controller() -> NnController {
        let net = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1, Activation::Tanh)
            .seed(3)
            .build();
        NnController::with_name(net, vec![20.0], "kappa1")
    }

    #[test]
    fn output_respects_tanh_scaling() {
        let k = controller();
        for s in [[1.0, 1.0], [-5.0, 3.0], [100.0, -100.0]] {
            let u = k.control(&s);
            assert!(u[0].abs() <= 20.0);
        }
    }

    #[test]
    fn lipschitz_includes_scale() {
        let k = controller();
        let unscaled = k.network().lipschitz_constant();
        assert!((k.lipschitz_constant() - 20.0 * unscaled).abs() < 1e-9);
    }

    #[test]
    fn empirical_slope_below_bound() {
        let k = controller();
        let domain = BoxRegion::cube(2, -2.0, 2.0);
        let emp = empirical_slope(&k, &domain, 300, 1);
        assert!(emp <= k.lipschitz_constant() * (1.0 + 1e-9));
        assert!(emp > 0.0);
    }

    #[test]
    fn output_bounds_contain_samples() {
        let k = controller();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let bounds = output_bounds(&k, &domain);
        let mut rng = cocktail_math::rng::seeded(2);
        for _ in 0..100 {
            let s = cocktail_math::rng::uniform_in_box(&mut rng, &domain);
            let u = k.control(&s);
            assert!(bounds[0].inflate(1e-9).contains(u[0]));
        }
    }

    #[test]
    #[should_panic(expected = "scale length")]
    fn wrong_scale_length_panics() {
        let net = MlpBuilder::new(2).output(1, Activation::Tanh).build();
        NnController::new(net, vec![1.0, 1.0]);
    }

    #[test]
    fn unscaled_has_unit_scale() {
        let net = MlpBuilder::new(2).output(2, Activation::Identity).build();
        let k = NnController::unscaled(net, "student");
        assert_eq!(k.scale(), &[1.0, 1.0]);
        assert_eq!(k.name(), "student");
    }
}
