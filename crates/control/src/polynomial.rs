//! Polynomial feedback controllers.

use crate::controller::Controller;
use cocktail_math::{BoxRegion, MultiPoly};
use serde::{Deserialize, Serialize};

/// A polynomial feedback law `uᵢ = pᵢ(s)`.
///
/// The 3D system's second expert in the paper is a polynomial controller
/// synthesized by the LP-based method of Sassi et al. \[25\]; Table I reports
/// its very small Lipschitz constant (0.72). We reproduce that expert with
/// a low-gain stabilizing polynomial law.
///
/// The Lipschitz bound over a box is computed soundly from interval
/// enclosures of the gradient: `L ≤ ‖(max |∂p/∂s₁|, …)‖₂`.
///
/// # Examples
///
/// ```
/// use cocktail_control::{Controller, PolynomialController};
/// use cocktail_math::MultiPoly;
///
/// // u = -x - z
/// let p = MultiPoly::from_terms(3, vec![(vec![1, 0, 0], -1.0), (vec![0, 0, 1], -1.0)]);
/// let k = PolynomialController::new(vec![p]);
/// assert_eq!(k.control(&[0.5, 0.0, 0.25]), vec![-0.75]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolynomialController {
    polys: Vec<MultiPoly>,
    label: String,
}

impl PolynomialController {
    /// Creates the controller from one polynomial per control dimension.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or the polynomials disagree on arity.
    pub fn new(polys: Vec<MultiPoly>) -> Self {
        Self::with_name(polys, "polynomial")
    }

    /// Creates the controller with a custom label.
    ///
    /// # Panics
    ///
    /// Panics if `polys` is empty or the polynomials disagree on arity.
    pub fn with_name(polys: Vec<MultiPoly>, label: impl Into<String>) -> Self {
        assert!(!polys.is_empty(), "controller needs at least one output");
        let n = polys[0].nvars();
        assert!(
            polys.iter().all(|p| p.nvars() == n),
            "polynomial arity mismatch"
        );
        Self {
            polys,
            label: label.into(),
        }
    }

    /// The component polynomials.
    pub fn polynomials(&self) -> &[MultiPoly] {
        &self.polys
    }
}

impl Controller for PolynomialController {
    fn control(&self, s: &[f64]) -> Vec<f64> {
        self.polys.iter().map(|p| p.eval(s)).collect()
    }

    fn state_dim(&self) -> usize {
        self.polys[0].nvars()
    }

    fn control_dim(&self) -> usize {
        self.polys.len()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, domain: &BoxRegion) -> Option<f64> {
        // For each output p, bound |∂p/∂sᵢ| on the domain; the controller's
        // 2-norm Lipschitz constant is bounded by the Frobenius norm of the
        // per-entry Jacobian bounds.
        let mut acc = 0.0;
        for p in &self.polys {
            for i in 0..p.nvars() {
                let bound = p.derivative(i).eval_interval(domain).mag();
                acc += bound * bound;
            }
        }
        Some(acc.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> PolynomialController {
        // u = -2x + x·y
        let p = MultiPoly::from_terms(2, vec![(vec![1, 0], -2.0), (vec![1, 1], 1.0)]);
        PolynomialController::new(vec![p])
    }

    #[test]
    fn evaluates_each_component() {
        let k = quad();
        assert_eq!(k.control(&[1.0, 3.0]), vec![1.0]);
        assert_eq!(k.state_dim(), 2);
        assert_eq!(k.control_dim(), 1);
    }

    #[test]
    fn lipschitz_bound_dominates_samples() {
        let k = quad();
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let lb = k.lipschitz(&domain).expect("computable");
        let mut rng = cocktail_math::rng::seeded(8);
        for _ in 0..200 {
            let a = cocktail_math::rng::uniform_in_box(&mut rng, &domain);
            let b = cocktail_math::rng::uniform_in_box(&mut rng, &domain);
            let dx = cocktail_math::vector::norm_2(&cocktail_math::vector::sub(&a, &b));
            if dx < 1e-12 {
                continue;
            }
            let dy = cocktail_math::vector::norm_2(&cocktail_math::vector::sub(
                &k.control(&a),
                &k.control(&b),
            ));
            assert!(
                dy <= lb * dx * (1.0 + 1e-9),
                "slope {} > bound {lb}",
                dy / dx
            );
        }
    }

    #[test]
    fn linear_poly_lipschitz_is_gain_norm() {
        // u = -3x ⇒ L = 3 on any domain
        let p = MultiPoly::from_terms(1, vec![(vec![1], -3.0)]);
        let k = PolynomialController::new(vec![p]);
        let l = k
            .lipschitz(&BoxRegion::cube(1, -10.0, 10.0))
            .expect("computable");
        assert!((l - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mixed_arity_panics() {
        PolynomialController::new(vec![MultiPoly::var(2, 0), MultiPoly::var(3, 0)]);
    }
}
