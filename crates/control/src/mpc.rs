//! Sampling-based model-predictive control.
//!
//! The paper lists MPC alongside LQR as the model-based expert families
//! ("well-established model-based approaches, such as model-predictive
//! control (MPC) or linear quadratic regulator (LQR)"). This module
//! implements a cross-entropy-method (CEM) MPC: at every step it samples
//! candidate control sequences over a short horizon, rolls them out
//! through the plant model, refits the sampling distribution to the elite
//! fraction, and applies the first control of the best sequence.
//!
//! CEM-MPC requires no gradients and handles the control bounds and the
//! nonconvex safe-region cost directly, at the price of per-step compute —
//! which is exactly the storage/compute burden the paper's distillation
//! step exists to remove.

use crate::controller::Controller;
use cocktail_env::Dynamics;
use cocktail_math::BoxRegion;
use std::sync::{Arc, Mutex};

/// Configuration of the CEM optimizer behind [`MpcController`].
#[derive(Debug, Clone)]
pub struct MpcConfig {
    /// Planning horizon in plant steps.
    pub horizon: usize,
    /// Candidate sequences per CEM iteration.
    pub samples: usize,
    /// CEM refinement iterations.
    pub iterations: usize,
    /// Fraction of samples kept as the elite set.
    pub elite_fraction: f64,
    /// Quadratic state cost weights (per dimension).
    pub state_weights: Vec<f64>,
    /// Quadratic control cost weights (per dimension).
    pub control_weights: Vec<f64>,
    /// Additive penalty when a planned state leaves the safe region.
    pub unsafe_penalty: f64,
    /// RNG seed (per-step streams derive from it deterministically).
    pub seed: u64,
}

impl Default for MpcConfig {
    fn default() -> Self {
        Self {
            horizon: 12,
            samples: 64,
            iterations: 3,
            elite_fraction: 0.2,
            state_weights: Vec::new(),
            control_weights: Vec::new(),
            unsafe_penalty: 1e4,
            seed: 0,
        }
    }
}

/// A cross-entropy-method MPC controller planning through the true plant
/// model.
///
/// The controller is deterministic: the CEM sampling stream is re-seeded
/// from a hash of the observed state on every call, so the same state
/// always produces the same control (required for reproducible
/// evaluations and for distillation datasets).
///
/// # Examples
///
/// ```no_run
/// use std::sync::Arc;
/// use cocktail_control::{Controller, MpcConfig, MpcController};
/// use cocktail_env::systems::VanDerPol;
///
/// let mpc = MpcController::new(Arc::new(VanDerPol::new()), MpcConfig::default());
/// let u = mpc.control(&[1.0, -0.5]);
/// assert!(u[0].abs() <= 20.0);
/// ```
pub struct MpcController {
    sys: Arc<dyn Dynamics>,
    config: MpcConfig,
    state_weights: Vec<f64>,
    control_weights: Vec<f64>,
    label: String,
    // CEM scratch RNG; re-seeded per call (interior mutability keeps the
    // Controller trait's &self signature)
    rng: Mutex<rand::rngs::StdRng>,
}

impl MpcController {
    /// Creates the controller; empty weight vectors default to all-ones.
    ///
    /// # Panics
    ///
    /// Panics if non-empty weights disagree with the plant's dimensions,
    /// or the CEM parameters are degenerate.
    pub fn new(sys: Arc<dyn Dynamics>, config: MpcConfig) -> Self {
        Self::with_name(sys, config, "mpc")
    }

    /// Creates the controller with a custom label.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_name(sys: Arc<dyn Dynamics>, config: MpcConfig, label: impl Into<String>) -> Self {
        assert!(config.horizon > 0, "horizon must be positive");
        assert!(config.samples >= 4, "CEM needs at least 4 samples");
        assert!(config.iterations > 0, "CEM needs at least one iteration");
        assert!(
            config.elite_fraction > 0.0 && config.elite_fraction <= 0.5,
            "elite fraction must be in (0, 0.5]"
        );
        let state_weights = if config.state_weights.is_empty() {
            vec![1.0; sys.state_dim()]
        } else {
            assert_eq!(
                config.state_weights.len(),
                sys.state_dim(),
                "state weight length"
            );
            config.state_weights.clone()
        };
        let control_weights = if config.control_weights.is_empty() {
            vec![0.1; sys.control_dim()]
        } else {
            assert_eq!(
                config.control_weights.len(),
                sys.control_dim(),
                "control weight length"
            );
            config.control_weights.clone()
        };
        let rng = Mutex::new(cocktail_math::rng::seeded(config.seed));
        Self {
            sys,
            config,
            state_weights,
            control_weights,
            label: label.into(),
            rng,
        }
    }

    /// Stage cost of one planned step.
    fn stage_cost(&self, s: &[f64], u: &[f64]) -> f64 {
        let mut cost = 0.0;
        for (x, w) in s.iter().zip(&self.state_weights) {
            cost += w * x * x;
        }
        for (v, w) in u.iter().zip(&self.control_weights) {
            cost += w * v * v;
        }
        if !self.sys.is_safe(s) {
            cost += self.config.unsafe_penalty;
        }
        cost
    }

    /// Total cost of rolling a control sequence out from `s0`
    /// (disturbance held at zero during planning).
    fn sequence_cost(&self, s0: &[f64], seq: &[Vec<f64>]) -> f64 {
        let omega = vec![0.0; self.sys.disturbance_dim()];
        let mut s = s0.to_vec();
        let mut cost = 0.0;
        for u in seq {
            let u = self.sys.clip_control(u);
            s = self.sys.step(&s, &u, &omega);
            cost += self.stage_cost(&s, &u);
        }
        cost
    }
}

impl Controller for MpcController {
    #[allow(
        clippy::expect_used,
        reason = "a poisoned rng mutex means a sibling thread already panicked, and the CEM loop always runs at least one iteration"
    )]
    fn control(&self, s: &[f64]) -> Vec<f64> {
        use rand::SeedableRng;
        assert_eq!(s.len(), self.sys.state_dim(), "state dimension mismatch");
        let (u_lo, u_hi) = self.sys.control_bounds();
        let m = self.sys.control_dim();
        let h = self.config.horizon;

        // deterministic per-state stream: hash the observed state bits
        let mut hash = self.config.seed;
        for &x in s {
            hash = hash.rotate_left(13) ^ x.to_bits();
        }
        let mut rng = {
            let mut shared = self.rng.lock().expect("mpc rng poisoned");
            *shared = rand::rngs::StdRng::seed_from_u64(hash);
            shared.clone()
        };

        // CEM over sequences: per-(step, dim) Gaussian mean/std
        let mut mean = vec![vec![0.0; m]; h];
        let mut std: Vec<Vec<f64>> = (0..h)
            .map(|_| {
                u_lo.iter()
                    .zip(&u_hi)
                    .map(|(&l, &hb)| 0.5 * (hb - l))
                    .collect()
            })
            .collect();
        let elites = ((self.config.samples as f64 * self.config.elite_fraction) as usize).max(2);
        let mut best_seq: Option<(f64, Vec<Vec<f64>>)> = None;

        for _ in 0..self.config.iterations {
            let mut scored: Vec<(f64, Vec<Vec<f64>>)> = (0..self.config.samples)
                .map(|_| {
                    let seq: Vec<Vec<f64>> = (0..h)
                        .map(|t| {
                            (0..m)
                                .map(|j| {
                                    let v = mean[t][j]
                                        + std[t][j]
                                            * cocktail_math::rng::gaussian_vector(&mut rng, 1, 1.0)
                                                [0];
                                    v.clamp(u_lo[j], u_hi[j])
                                })
                                .collect()
                        })
                        .collect();
                    (self.sequence_cost(s, &seq), seq)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            if best_seq.as_ref().is_none_or(|(c, _)| scored[0].0 < *c) {
                best_seq = Some(scored[0].clone());
            }
            // refit mean/std to the elite set
            for t in 0..h {
                for j in 0..m {
                    let vals: Vec<f64> = scored[..elites].iter().map(|(_, q)| q[t][j]).collect();
                    mean[t][j] = cocktail_math::stats::mean(&vals);
                    std[t][j] = cocktail_math::stats::std_dev(&vals).max(1e-3);
                }
            }
        }
        let (_, seq) = best_seq.expect("at least one CEM iteration ran");
        self.sys.clip_control(&seq[0])
    }

    fn state_dim(&self) -> usize {
        self.sys.state_dim()
    }

    fn control_dim(&self) -> usize {
        self.sys.control_dim()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
        // the CEM argmin is not Lipschitz in general (plan switching)
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocktail_env::systems::VanDerPol;

    fn mpc() -> MpcController {
        // 5 CEM iterations: 3 is enough on average but leaves the
        // closed-loop regulation test at the mercy of the sample stream.
        MpcController::new(
            Arc::new(VanDerPol::new()),
            MpcConfig {
                horizon: 10,
                samples: 48,
                iterations: 5,
                ..Default::default()
            },
        )
    }

    #[test]
    fn control_is_deterministic_per_state() {
        let c = mpc();
        let s = [1.2, -0.7];
        assert_eq!(c.control(&s), c.control(&s));
        // interleaved queries do not disturb determinism
        let u1 = c.control(&s);
        let _ = c.control(&[0.0, 0.0]);
        assert_eq!(c.control(&s), u1);
    }

    #[test]
    fn control_respects_bounds() {
        let c = mpc();
        for s in [[2.0, 2.0], [-2.0, -2.0], [0.5, -1.5]] {
            let u = c.control(&s);
            assert!(u[0].abs() <= 20.0);
        }
    }

    #[test]
    fn mpc_pushes_toward_the_origin() {
        let c = mpc();
        // from a state moving up fast, MPC must brake (u < 0)
        let u = c.control(&[1.0, 1.8]);
        assert!(u[0] < 0.0, "expected braking, got {}", u[0]);
        let u = c.control(&[-1.0, -1.8]);
        assert!(u[0] > 0.0, "expected acceleration, got {}", u[0]);
    }

    #[test]
    fn mpc_stabilizes_vdp_in_closed_loop() {
        let sys = VanDerPol::new();
        let c = mpc();
        let mut s = vec![1.5, 1.0];
        for _ in 0..120 {
            let u = sys.clip_control(&c.control(&s));
            s = sys.step(&s, &u, &[0.0]);
            assert!(sys.is_safe(&s), "MPC left the safe region at {s:?}");
        }
        assert!(
            cocktail_math::vector::norm_2(&s) < 0.6,
            "not regulated: {s:?}"
        );
    }

    #[test]
    fn no_lipschitz_claim() {
        assert!(mpc().lipschitz(&BoxRegion::cube(2, -1.0, 1.0)).is_none());
    }
}
