//! Graceful expert degradation for the mixed controller.
//!
//! When fault injection (or plain numerical trouble) makes an expert emit
//! non-finite or wildly out-of-range outputs, the mixed controller should
//! not let one bad term poison `Σ aᵢ κᵢ(s)`. This module provides the
//! opt-in monitor that [`crate::MixedController`] consults at control time:
//! offending experts are *quarantined* (their mixing weight is zeroed for a
//! cooldown window while the remaining weights are renormalized) and every
//! offense is recorded as a structured [`DegradationEvent`].
//!
//! The monitor is strictly opt-in: a mixed controller built without
//! [`crate::MixedController::with_degradation`] runs the exact legacy
//! mixing arithmetic, bit for bit.

use serde::{Deserialize, Serialize};
use std::sync::{Mutex, PoisonError};

/// Tuning knobs for expert quarantine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// An expert output component is "out of range" when it leaves
    /// `[U_inf − f·span, U_sup + f·span]` where `span = U_sup − U_inf` and
    /// `f` is this factor. The slack exists because individual experts may
    /// legitimately overshoot the clipped control range; only gross
    /// excursions (or non-finite values) indicate a fault.
    pub margin_factor: f64,
    /// How many subsequent `control` calls a quarantined expert sits out
    /// before being probed again. A permanently faulty expert simply
    /// re-offends at each probe and goes straight back into quarantine.
    pub cooldown: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            margin_factor: 1.0,
            cooldown: 25,
        }
    }
}

/// Why an expert was quarantined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DegradationReason {
    /// The expert produced NaN or ±∞.
    NonFinite,
    /// The expert produced `value`, outside the tolerated band whose
    /// violated edge is `bound`.
    OutOfRange { value: f64, bound: f64 },
}

impl std::fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFinite => write!(f, "non-finite output"),
            Self::OutOfRange { value, bound } => {
                write!(f, "output {value} beyond tolerated bound {bound}")
            }
        }
    }
}

/// One quarantine decision, recorded at control time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// The guarded `control` call (0-based) on which the offense occurred.
    pub call: u64,
    /// Index of the offending expert in the mixture.
    pub expert: usize,
    /// The offending expert's label.
    pub expert_name: String,
    /// What the expert did wrong.
    pub reason: DegradationReason,
}

impl std::fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "call {}: quarantined expert {} ({}) — {}",
            self.call, self.expert, self.expert_name, self.reason
        )
    }
}

#[derive(Debug)]
struct QuarantineState {
    /// Guarded `control` calls served so far (the quarantine clock).
    calls: u64,
    /// Per-expert quarantine horizon: quarantined while `calls < until`.
    until: Vec<Option<u64>>,
    /// Structured offense log, in call order.
    events: Vec<DegradationEvent>,
}

/// Interior-mutable quarantine bookkeeping shared by all `control` calls of
/// one mixed controller. Created via
/// [`crate::MixedController::with_degradation`].
#[derive(Debug)]
pub struct DegradationMonitor {
    config: DegradationConfig,
    state: Mutex<QuarantineState>,
}

impl DegradationMonitor {
    pub(crate) fn new(config: DegradationConfig, expert_count: usize) -> Self {
        Self {
            config,
            state: Mutex::new(QuarantineState {
                calls: 0,
                until: vec![None; expert_count],
                events: Vec::new(),
            }),
        }
    }

    pub(crate) fn config(&self) -> &DegradationConfig {
        &self.config
    }

    /// Claims the next call number on the quarantine clock.
    pub(crate) fn next_call(&self) -> u64 {
        let mut st = self.lock();
        let call = st.calls;
        st.calls += 1;
        call
    }

    /// Whether `expert` is sitting out `call`.
    pub(crate) fn is_quarantined(&self, expert: usize, call: u64) -> bool {
        self.lock().until[expert].is_some_and(|until| call < until)
    }

    /// Quarantines `expert` from `call` and records the offense.
    pub(crate) fn quarantine(
        &self,
        call: u64,
        expert: usize,
        name: &str,
        reason: DegradationReason,
    ) {
        let mut st = self.lock();
        st.until[expert] = Some(call + 1 + self.config.cooldown);
        st.events.push(DegradationEvent {
            call,
            expert,
            expert_name: name.to_string(),
            reason,
        });
    }

    /// A copy of the offense log so far.
    pub(crate) fn events(&self) -> Vec<DegradationEvent> {
        self.lock().events.clone()
    }

    /// Drains and returns the offense log.
    pub(crate) fn take_events(&self) -> Vec<DegradationEvent> {
        std::mem::take(&mut self.lock().events)
    }

    /// Clears quarantines, the event log and the call clock (start of a
    /// fresh evaluation with the same controller).
    pub(crate) fn reset(&self) {
        let mut st = self.lock();
        st.calls = 0;
        st.events.clear();
        st.until.iter_mut().for_each(|u| *u = None);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QuarantineState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_expires_after_cooldown() {
        let m = DegradationMonitor::new(
            DegradationConfig {
                margin_factor: 1.0,
                cooldown: 2,
            },
            1,
        );
        m.quarantine(0, 0, "e", DegradationReason::NonFinite);
        assert!(m.is_quarantined(0, 1));
        assert!(m.is_quarantined(0, 2));
        assert!(!m.is_quarantined(0, 3)); // probed again after the cooldown
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let m = DegradationMonitor::new(DegradationConfig::default(), 2);
        assert_eq!(m.next_call(), 0);
        m.quarantine(0, 1, "e", DegradationReason::NonFinite);
        m.reset();
        assert_eq!(m.next_call(), 0);
        assert!(!m.is_quarantined(1, 0));
        assert!(m.events().is_empty());
    }

    #[test]
    fn events_serialize_round_trip() {
        let ev = DegradationEvent {
            call: 7,
            expert: 1,
            expert_name: "kappa2".into(),
            reason: DegradationReason::OutOfRange {
                value: 1.0e9,
                bound: 60.0,
            },
        };
        let json = serde_json::to_string(&ev).expect("serialize");
        let back: DegradationEvent = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, ev);
        assert!(ev.to_string().contains("quarantined expert 1"));
    }
}
