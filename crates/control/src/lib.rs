//! Controller abstractions for the Cocktail reproduction.
//!
//! The paper manipulates five kinds of controllers; this crate implements
//! all of them behind the object-safe [`Controller`] trait:
//!
//! * [`NnController`] — a neural controller `u = scale ⊙ net(s)` (the
//!   DDPG-style experts `κ₁`, `κ₂` and the distilled students `κ_D`, `κ*`);
//! * [`LinearFeedbackController`] — `u = −K s` (LQR-style laws used to
//!   manufacture suboptimal experts);
//! * [`PolynomialController`] — the model-based expert of the 3D system
//!   (Sassi et al. \[25\] synthesize polynomial feedback);
//! * [`SwitchingController`] — the discrete-adaptation baseline `A_S` \[4\]:
//!   exactly one expert is active at each step, chosen by a selector
//!   (greedy one-step lookahead here; an RL-trained selector lives in
//!   `cocktail-rl`);
//! * [`MixedController`] — the paper's `A_W`: the weighted expert
//!   combination `u = clip(Σ aᵢ(s) κᵢ(s), U_inf, U_sup)` with weights from
//!   an adaptive policy network (Eq. 4).
//!
//! # Examples
//!
//! ```
//! use cocktail_control::{Controller, LinearFeedbackController};
//! use cocktail_math::Matrix;
//!
//! let lqr = LinearFeedbackController::new(Matrix::from_rows(vec![vec![2.0, 3.0]]));
//! assert_eq!(lqr.control(&[1.0, 1.0]), vec![-5.0]);
//! ```

pub mod controller;
pub mod degradation;
pub mod faulty;
pub mod linear;
pub mod lqr;
pub mod mixed;
pub mod mpc;
pub mod neural;
pub mod polynomial;
pub mod switching;

pub use controller::Controller;
pub use degradation::{DegradationConfig, DegradationEvent, DegradationReason};
pub use faulty::FaultyExpert;
pub use linear::LinearFeedbackController;
pub use lqr::{dlqr, linearize, lqr_controller, Linearization, SynthesizeLqrError};
pub use mixed::ConstantWeights;
pub use mixed::{MixedController, TanhWeightPolicy, WeightPolicy};
pub use mpc::{MpcConfig, MpcController};
pub use neural::NnController;
pub use polynomial::PolynomialController;
pub use switching::{FnSelector, GreedySelector, Selector, SwitchingController};
