//! The feedback-controller trait.

use cocktail_math::BoxRegion;

/// A state-feedback controller `u = κ(s)`.
///
/// The trait is object-safe; the experiment harness stores experts and
/// students as `Arc<dyn Controller>`.
///
/// Implementations are pure functions of the observed state — perturbations
/// and clipping are handled by the rollout driver — but may internally be
/// neural networks, polynomials, gain matrices or compositions of other
/// controllers.
pub trait Controller: Send + Sync {
    /// Computes the control input for the observed state.
    ///
    /// # Panics
    ///
    /// Implementations panic if `s.len() != self.state_dim()`.
    fn control(&self, s: &[f64]) -> Vec<f64>;

    /// Computes the control for a block of states at once.
    ///
    /// The default loops over [`Controller::control`]; neural controllers
    /// override it with a batched network forward. Either way each result
    /// row is identical to the per-state call, so callers may batch freely
    /// without changing any numbers.
    fn control_batch(&self, states: &[Vec<f64>]) -> Vec<Vec<f64>> {
        states.iter().map(|s| self.control(s)).collect()
    }

    /// Expected state dimension.
    fn state_dim(&self) -> usize;

    /// Produced control dimension.
    fn control_dim(&self) -> usize;

    /// A human-readable label (`"kappa1"`, `"A_W"`, …).
    fn name(&self) -> &str;

    /// An upper bound on the controller's Lipschitz constant over `domain`
    /// (2-norm), or `None` when the bound is not computable — the paper
    /// marks `A_S` and `A_W` with "-" in Table I for exactly this reason.
    fn lipschitz(&self, domain: &BoxRegion) -> Option<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Zero;

    impl Controller for Zero {
        fn control(&self, s: &[f64]) -> Vec<f64> {
            assert_eq!(s.len(), 2);
            vec![0.0]
        }
        fn state_dim(&self) -> usize {
            2
        }
        fn control_dim(&self) -> usize {
            1
        }
        fn name(&self) -> &str {
            "zero"
        }
        fn lipschitz(&self, _domain: &BoxRegion) -> Option<f64> {
            Some(0.0)
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let c: Box<dyn Controller> = Box::new(Zero);
        assert_eq!(c.control(&[1.0, 2.0]), vec![0.0]);
        assert_eq!(c.lipschitz(&BoxRegion::cube(2, -1.0, 1.0)), Some(0.0));
    }
}
