//! Property-based tests of the controller algebra: the mixing action
//! space really is a super-space of switching (Proposition 1's structural
//! argument), and Lipschitz bounds hold for every controller kind.

use cocktail_control::{
    ConstantWeights, Controller, FnSelector, LinearFeedbackController, MixedController,
    NnController, PolynomialController, SwitchingController,
};
use cocktail_math::{rng, vector, BoxRegion, Matrix, MultiPoly};
use cocktail_nn::{Activation, MlpBuilder};
use proptest::prelude::*;
use std::sync::Arc;

fn experts(g1: f64, g2: f64) -> Vec<Arc<dyn Controller>> {
    vec![
        Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
            vec![g1, 0.5 * g1],
        ]))),
        Arc::new(LinearFeedbackController::new(Matrix::from_rows(vec![
            vec![0.3 * g2, g2],
        ]))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-hot mixing weights reproduce the selected expert exactly — the
    /// structural inclusion behind Proposition 1.
    #[test]
    fn one_hot_mixing_equals_switching(
        g1 in 0.1..5.0f64, g2 in 0.1..5.0f64,
        s0 in -2.0..2.0f64, s1 in -2.0..2.0f64,
        pick in 0usize..2,
    ) {
        let e = experts(g1, g2);
        let mut weights = vec![0.0, 0.0];
        weights[pick] = 1.0;
        let mixed = MixedController::new(
            e.clone(),
            Arc::new(ConstantWeights(weights)),
            vec![-1000.0],
            vec![1000.0],
        );
        let switching = SwitchingController::new(
            e.clone(),
            Arc::new(FnSelector(move |_: &[f64]| pick)),
        );
        let s = [s0, s1];
        let um = mixed.control(&s);
        let us = switching.control(&s);
        prop_assert!((um[0] - us[0]).abs() < 1e-12);
        prop_assert!((um[0] - e[pick].control(&s)[0]).abs() < 1e-12);
    }

    /// Mixing output is linear in the weights (before clipping).
    #[test]
    fn mixing_is_linear_in_weights(
        w0 in -2.0..2.0f64, w1 in -2.0..2.0f64, scale in -2.0..2.0f64,
        s0 in -1.0..1.0f64, s1 in -1.0..1.0f64,
    ) {
        let e = experts(1.0, 2.0);
        let mk = |w: Vec<f64>| {
            MixedController::new(e.clone(), Arc::new(ConstantWeights(w)), vec![-1e9], vec![1e9])
        };
        let s = [s0, s1];
        let base = mk(vec![w0, w1]).raw_control(&s)[0];
        let scaled = mk(vec![scale * w0, scale * w1]).raw_control(&s)[0];
        prop_assert!((scaled - scale * base).abs() < 1e-9 * (1.0 + base.abs() * scale.abs()));
    }

    /// The mixed control after clipping always lies inside the bound.
    #[test]
    fn mixed_control_is_clipped(
        w0 in -10.0..10.0f64, w1 in -10.0..10.0f64,
        s0 in -2.0..2.0f64, s1 in -2.0..2.0f64,
    ) {
        let e = experts(3.0, 4.0);
        let mixed = MixedController::new(
            e,
            Arc::new(ConstantWeights(vec![w0, w1])),
            vec![-20.0],
            vec![20.0],
        );
        let u = mixed.control(&[s0, s1]);
        prop_assert!(u[0].abs() <= 20.0);
    }

    /// Every controller kind respects its own Lipschitz bound on samples.
    #[test]
    fn lipschitz_bounds_hold_for_all_kinds(seed in 0u64..500) {
        let domain = BoxRegion::cube(2, -1.5, 1.5);
        let nn = {
            let net = MlpBuilder::new(2)
                .hidden(8, Activation::Tanh)
                .output(1, Activation::Tanh)
                .seed(seed)
                .build();
            NnController::new(net, vec![10.0])
        };
        let lin = LinearFeedbackController::new(Matrix::from_rows(vec![vec![2.0, -1.0]]));
        let poly = PolynomialController::new(vec![MultiPoly::from_terms(
            2,
            vec![(vec![1, 0], -1.5), (vec![1, 1], 0.5)],
        )]);
        let controllers: Vec<(&dyn Controller, f64)> = vec![
            (&nn, nn.lipschitz(&domain).unwrap()),
            (&lin, lin.lipschitz(&domain).unwrap()),
            (&poly, poly.lipschitz(&domain).unwrap()),
        ];
        let mut r = rng::seeded(seed.wrapping_add(1));
        for _ in 0..20 {
            let a = rng::uniform_in_box(&mut r, &domain);
            let b = rng::uniform_in_box(&mut r, &domain);
            let dx = vector::norm_2(&vector::sub(&a, &b));
            if dx < 1e-9 {
                continue;
            }
            for (c, bound) in &controllers {
                let dy = vector::norm_2(&vector::sub(&c.control(&a), &c.control(&b)));
                prop_assert!(dy <= bound * dx * (1.0 + 1e-9) + 1e-12,
                    "{}: slope {} > bound {bound}", c.name(), dy / dx);
            }
        }
    }

    /// Bias never changes a linear controller's Lipschitz constant.
    #[test]
    fn bias_is_lipschitz_neutral(bias in -10.0..10.0f64, g in 0.1..10.0f64) {
        let domain = BoxRegion::cube(2, -1.0, 1.0);
        let plain = LinearFeedbackController::new(Matrix::from_rows(vec![vec![g, g]]));
        let biased = LinearFeedbackController::with_bias(
            Matrix::from_rows(vec![vec![g, g]]),
            vec![bias],
            "biased",
        );
        prop_assert_eq!(plain.lipschitz(&domain), biased.lipschitz(&domain));
        // and shifts the output by exactly the bias
        let s = [0.3, -0.8];
        prop_assert!((biased.control(&s)[0] - plain.control(&s)[0] - bias).abs() < 1e-12);
    }
}
