//! Model-based experts: synthesize two LQR controllers from a numerically
//! linearized cartpole, clone them into neural experts, and run the full
//! Cocktail pipeline on top.
//!
//! ```text
//! cargo run --release --example lqr_experts
//! ```
//!
//! The paper notes experts "could be based on well-established model-based
//! approaches, such as MPC or LQR". This example exercises that expert
//! family end-to-end: `cocktail_control::lqr` derives the gains, the
//! pipeline mixes and distills them.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "examples abort on failure by design"
)]

use cocktail_control::lqr::{linearize, lqr_controller};
use cocktail_control::{Controller, LinearFeedbackController, NnController};
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::{Preset, SystemId};
use cocktail_distill::TeacherDataset;
use cocktail_math::vector;
use cocktail_nn::train::{fit_regression, TrainConfig};
use cocktail_nn::{Activation, MlpBuilder};
use std::sync::Arc;

/// Clones an affine law into a tanh-output neural controller.
fn clone_into_network(
    sys: &dyn cocktail_env::Dynamics,
    law: &LinearFeedbackController,
    label: &str,
    seed: u64,
) -> NnController {
    let (_, u_hi) = sys.control_bounds();
    let data = TeacherDataset::sample_uniform(law, &sys.verification_domain(), 1024, seed);
    let targets: Vec<Vec<f64>> = data
        .controls()
        .iter()
        .map(|u| {
            u.iter()
                .zip(&u_hi)
                .map(|(&v, &h)| (v / h).clamp(-1.0, 1.0))
                .collect()
        })
        .collect();
    let mut net = MlpBuilder::new(sys.state_dim())
        .hidden(24, Activation::Tanh)
        .hidden(24, Activation::Tanh)
        .output(sys.control_dim(), Activation::Tanh)
        .seed(seed)
        .build();
    fit_regression(
        &mut net,
        data.states(),
        &targets,
        &TrainConfig {
            epochs: 80,
            ..Default::default()
        },
    );
    NnController::with_name(net, u_hi, label)
}

fn main() {
    let sys_id = SystemId::CartPole;
    let sys = sys_id.dynamics();

    // ---- linearize the cartpole at the upright equilibrium
    let lin = linearize(sys.as_ref(), &[0.0; 4], &[0.0]);
    println!("linearized cartpole at the upright equilibrium:");
    println!("  A row 3 (pole dynamics): {:?}", lin.a.row(3));
    println!(
        "  drift norm: {:.2e} (true equilibrium)",
        vector::norm_2(&lin.drift)
    );

    // ---- two LQR designs with different weightings
    let cheap = lqr_controller(sys.as_ref(), &[0.5, 0.5, 5.0, 0.5], &[1.0], "lqr-cheap")
        .expect("stabilizable");
    let tight = lqr_controller(sys.as_ref(), &[5.0, 5.0, 50.0, 5.0], &[0.05], "lqr-tight")
        .expect("stabilizable");
    println!("\nLQR gains:");
    println!("  cheap (R=1):    {:?}", cheap.gain().row(0));
    println!("  tight (R=0.05): {:?}", tight.gain().row(0));

    let cfg = EvalConfig {
        samples: 250,
        ..Default::default()
    };
    for law in [&cheap, &tight] {
        let eval = evaluate(sys.as_ref(), law, &cfg);
        println!(
            "  {}: S_r {:.1}%, e {:.1}",
            law.name(),
            eval.safe_rate_percent(),
            eval.mean_energy
        );
    }

    // ---- clone into neural experts and run the Cocktail pipeline
    println!("\ncloning the LQR laws into neural experts and running Cocktail ...");
    let experts: Vec<Arc<dyn Controller>> = vec![
        Arc::new(clone_into_network(sys.as_ref(), &cheap, "nn-lqr-cheap", 1)),
        Arc::new(clone_into_network(sys.as_ref(), &tight, "nn-lqr-tight", 2)),
    ];
    let result = Cocktail::new(sys_id, experts.clone())
        .with_config(cocktail_core::experiment::pipeline_config(
            sys_id,
            Preset::from_env(Preset::Fast),
            0,
        ))
        .run();

    println!(
        "\n{:<16} {:>8} {:>10} {:>8}",
        "controller", "S_r (%)", "energy", "L"
    );
    let domain = sys.verification_domain();
    let lineup: Vec<(&str, &dyn Controller)> = vec![
        ("nn-lqr-cheap", experts[0].as_ref()),
        ("nn-lqr-tight", experts[1].as_ref()),
        ("A_W (mixed)", result.mixed.as_ref()),
        ("kappa* (robust)", result.kappa_star.as_ref()),
    ];
    for (name, c) in lineup {
        let eval = evaluate(sys.as_ref(), c, &cfg);
        let l = c
            .lipschitz(&domain)
            .map_or("-".to_owned(), |v| format!("{v:.1}"));
        println!(
            "{:<16} {:>8.1} {:>10.1} {:>8}",
            name,
            eval.safe_rate_percent(),
            eval.mean_energy,
            l
        );
    }
}
