//! Quickstart: the whole Cocktail pipeline on the Van der Pol oscillator
//! in one page.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds two imperfect experts, learns the adaptive mixing policy with
//! PPO, distills the mixed teacher into the robust student `κ*`, and
//! prints the three paper metrics (safe control rate, control energy,
//! Lipschitz constant) for every controller along the way.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "examples abort on failure by design"
)]

use cocktail_control::Controller;
use cocktail_core::experts::cloned_experts;
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::{Preset, SystemId};

fn main() {
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    println!(
        "system: {} (T = {}, X = X0 = [-2,2]^2)",
        sys_id.label(),
        sys.horizon()
    );

    // 1. two experts with complementary flaws
    println!("\n[1/3] building experts ...");
    let experts = cloned_experts(sys_id, 0);

    // 2. adaptive mixing (PPO) + robust distillation
    println!("[2/3] adaptive mixing + distillation (Fast preset) ...");
    let result = Cocktail::new(sys_id, experts.clone())
        .with_config(cocktail_core::experiment::pipeline_config(
            sys_id,
            Preset::from_env(Preset::Fast),
            0,
        ))
        .run();
    let last = result.ppo_history.last().expect("history non-empty");
    println!(
        "      PPO final iteration: mean return {:.1}, {:.0}% safe episodes",
        last.mean_return,
        100.0 * last.safe_fraction
    );

    // 3. evaluate everything
    println!("[3/3] evaluating (250 initial states) ...\n");
    let cfg = EvalConfig {
        samples: 250,
        ..Default::default()
    };
    let domain = sys.verification_domain();
    let lineup: Vec<(&str, &dyn Controller)> = vec![
        ("kappa1 (expert)", experts[0].as_ref()),
        ("kappa2 (expert)", experts[1].as_ref()),
        ("A_W (mixed teacher)", result.mixed.as_ref()),
        ("kappa_D (direct)", result.kappa_d.as_ref()),
        ("kappa* (robust)", result.kappa_star.as_ref()),
    ];
    println!(
        "{:<22} {:>8} {:>10} {:>8}",
        "controller", "S_r (%)", "energy", "L"
    );
    for (name, c) in lineup {
        let eval = evaluate(sys.as_ref(), c, &cfg);
        let l = c
            .lipschitz(&domain)
            .map_or("-".to_owned(), |v| format!("{v:.1}"));
        println!(
            "{:<22} {:>8.1} {:>10.1} {:>8}",
            name,
            eval.safe_rate_percent(),
            eval.mean_energy,
            l
        );
    }
    println!(
        "\nkappa* is a single {}-parameter MLP:",
        result.kappa_star.network().param_count()
    );
    println!("  {}", result.kappa_star.network());
}
