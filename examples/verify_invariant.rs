//! Formal verification walk-through: Bernstein certification, invariant
//! sets and both reachability modes — without the RL pipeline (a fixed
//! neural controller is cloned from a stabilizing law, so this example is
//! fast and deterministic).
//!
//! ```text
//! cargo run --release --example verify_invariant
//! ```

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "examples abort on failure by design"
)]

use cocktail_control::{Controller, LinearFeedbackController, NnController};
use cocktail_core::SystemId;
use cocktail_distill::TeacherDataset;
use cocktail_env::Dynamics;
use cocktail_math::{BoxRegion, Matrix};
use cocktail_nn::train::{fit_regression, TrainConfig};
use cocktail_nn::{Activation, MlpBuilder};
use cocktail_verify::reach::ReachMode;
use cocktail_verify::{
    invariant_set, reach_analysis, BernsteinCertificate, CertificateConfig, InvariantConfig,
    ReachConfig,
};

/// Clones `u = -(3 s1 + 4 s2)` into a small tanh network.
fn neural_controller(sys: &dyn Dynamics) -> NnController {
    let law = LinearFeedbackController::new(Matrix::from_rows(vec![vec![3.0, 4.0]]));
    let data = TeacherDataset::sample_uniform(&law, &sys.verification_domain(), 1024, 0);
    let (_, u_hi) = sys.control_bounds();
    let targets: Vec<Vec<f64>> = data
        .controls()
        .iter()
        .map(|u| {
            u.iter()
                .zip(&u_hi)
                .map(|(&v, &h)| (v / h).clamp(-1.0, 1.0))
                .collect()
        })
        .collect();
    let mut net = MlpBuilder::new(2)
        .hidden(16, Activation::Tanh)
        .output(1, Activation::Tanh)
        .seed(7)
        .build();
    fit_regression(
        &mut net,
        data.states(),
        &targets,
        &TrainConfig {
            epochs: 150,
            ..Default::default()
        },
    );
    NnController::with_name(net, u_hi, "cloned-damping")
}

fn main() {
    let sys = SystemId::Oscillator.dynamics();
    let controller = neural_controller(sys.as_ref());
    println!(
        "controller: {} with L = {:.1}",
        controller.name(),
        controller.lipschitz_constant()
    );

    // ---- 1. Bernstein certification
    let cert = BernsteinCertificate::build(
        controller.network(),
        controller.scale(),
        &sys.verification_domain(),
        &CertificateConfig {
            degree: 4,
            tolerance: 0.15,
            max_pieces: 1 << 18,
            error_samples_per_dim: 9,
        },
    )
    .expect("certificate fits the budget");
    println!(
        "certificate: {} pieces, eps = {:.3} (kappa(x) ∈ B_p(x) ± eps on every piece)",
        cert.piece_count(),
        cert.epsilon()
    );

    // ---- 2. control invariant set (Fig. 3 machinery)
    let inv = invariant_set(
        sys.as_ref(),
        &cert,
        &InvariantConfig {
            grid: 60,
            max_iterations: 1000,
        },
    )
    .expect("dimensions agree");
    println!(
        "invariant set: {:.1}% of X in {:.2?}; contains origin: {}",
        100.0 * inv.alive_fraction(),
        inv.duration,
        inv.contains(&[0.0, 0.0])
    );

    // ---- 3. reachability from a corner of X0 (Fig. 4 machinery)
    let x0 = BoxRegion::from_bounds(&[1.0, 1.0], &[1.1, 1.1]);
    for (name, mode) in [
        ("grid paving", ReachMode::GridPaving),
        ("subdivision", ReachMode::Subdivision),
    ] {
        let reach = reach_analysis(
            sys.as_ref(),
            &cert,
            &x0,
            &ReachConfig {
                steps: 40,
                split_width: 0.05,
                mode,
                ..Default::default()
            },
        )
        .expect("verifies");
        let hull = reach.final_hull();
        println!(
            "reach ({name}): safe = {}, peak boxes = {}, final hull = {hull}, {:.2?}",
            reach.verified_safe, reach.peak_boxes, reach.duration
        );
    }
}
