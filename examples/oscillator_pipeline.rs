//! A detailed walk through every stage of the Cocktail pipeline on the
//! Van der Pol oscillator, including the verification of the final
//! student.
//!
//! ```text
//! cargo run --release --example oscillator_pipeline
//! ```
//!
//! Pass `--faults` to run the fault-injection drill instead: one expert
//! is wrapped with a deterministic NaN fault and the mixed controller's
//! graceful-degradation monitor quarantines it mid-flight, printing the
//! degradation report.
//!
//! Pass `--telemetry <path>` to stream structured JSONL telemetry (stage
//! spans, counters, per-iteration events) to `<path>`; the run prints an
//! aggregate summary of the stream at the end.
//!
//! Pass `--export-bundle <path>` to package the robust student `κ*` as a
//! `cocktail-serve` controller bundle (with its embedded formal safety
//! certificate) after verification, then read it back through the serving
//! admission gate as a self-check. The exported file is what
//! `cocktail-serve serve --bundle <path>` consumes.
//!
//! Pass `--verify` to run the certification self-check: the safety
//! certificate is serialized, re-derived from scratch, and the two are
//! required to agree exactly (wall-clock excluded) — the determinism
//! contract the serving admission gate relies on.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "examples abort on failure by design"
)]

use cocktail_core::experts::{cloned_experts, reference_laws};
use cocktail_core::metrics::{evaluate, evaluate_with_telemetry, EvalConfig};
use cocktail_core::pipeline::Cocktail;
use cocktail_core::report::render_telemetry_summary;
use cocktail_core::supervisor::SupervisorConfig;
use cocktail_core::{certify_student, Preset, SystemId};
use cocktail_obs::{read_jsonl, summarize, JsonlSink, NullSink, Telemetry};
use std::sync::Arc;

/// The path following `flag` on the command line, if present.
fn flag_path(flag: &str) -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a path"))
                    .into(),
            );
        }
    }
    None
}

/// `--export-bundle <path>`: package `κ*` as a serving bundle, then load
/// it back through the admission gate so the example proves the artifact
/// it just wrote is actually servable.
fn export_bundle(
    path: &std::path::Path,
    sys_id: SystemId,
    result: &cocktail_core::pipeline::CocktailResult,
    config: &cocktail_core::pipeline::CocktailConfig,
    tel: &dyn Telemetry,
) {
    use cocktail_serve::bundle::{fnv1a_64, ControllerBundle, Provenance};

    let provenance = Provenance {
        seed: config.seed,
        config_hash: fnv1a_64(format!("{config:?}").as_bytes()),
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
    };
    let bundle = ControllerBundle::package_with(
        sys_id,
        result.kappa_star.network().clone(),
        result.kappa_star.scale().to_vec(),
        provenance,
        None, // canonical default verification budgets
        tel,
    )
    .expect("verified student packages");
    bundle.save(path).expect("bundle saves");
    println!(
        "\nexported controller bundle (format v{}) to {}",
        bundle.version,
        path.display()
    );

    let reloaded = ControllerBundle::load(path).expect("bundle loads back");
    match cocktail_serve::admit(reloaded) {
        Ok(admitted) => {
            println!(
                "admission self-check: ADMITTED (claim {:.4}, recomputed {:.4}, \
                 sweep lower bound {:.4})",
                admitted.bundle.lipschitz_claim,
                admitted.recomputed_bound,
                admitted.sweep_lower_bound
            );
            let cert = admitted
                .safety
                .expect("exported bundle carries a safety certificate");
            println!(
                "admission self-check: safety verdict {} re-derived in {:.0} ms",
                cert.verdict.label(),
                cert.verify_ms
            );
        }
        Err(e) => panic!("exported bundle failed its own admission gate: {e}"),
    }
}

fn main() {
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();
    let cfg = EvalConfig {
        samples: 250,
        ..Default::default()
    };

    if std::env::args().any(|a| a == "--faults") {
        fault_drill(sys_id, &cfg);
        return;
    }

    let tel_path = flag_path("--telemetry");
    let tel: Arc<dyn Telemetry> = match &tel_path {
        Some(path) => Arc::new(JsonlSink::create(path).expect("telemetry file is writable")),
        None => Arc::new(NullSink),
    };
    let workers = cocktail_math::parallel::default_workers();

    // ---- stage 0: the reference laws behind the experts
    let (law1, law2) = reference_laws(sys_id);
    println!(
        "expert laws: u1 = -{:?} s + {:?}",
        law1.gain.row(0),
        law1.bias
    );
    println!(
        "             u2 = -{:?} s + {:?}",
        law2.gain.row(0),
        law2.bias
    );

    // ---- stage 1: behavior-cloned neural experts
    let experts = cloned_experts(sys_id, 0);
    for e in &experts {
        let eval = evaluate_with_telemetry(sys.as_ref(), e.as_ref(), &cfg, workers, &*tel);
        println!(
            "{}: S_r {:.1}%, e {:.1}, L {:.1}",
            e.name(),
            eval.safe_rate_percent(),
            eval.mean_energy,
            e.lipschitz(&sys.verification_domain())
                .expect("neural expert")
        );
    }

    // ---- stage 2: PPO adaptive mixing, under the checkpointing
    // supervisor (bit-identical to the plain run when nothing diverges)
    println!("\ntraining the adaptive mixing policy (PPO) ...");
    let pipeline_cfg =
        cocktail_core::experiment::pipeline_config(sys_id, Preset::from_env(Preset::Fast), 0);
    let result = Cocktail::new(sys_id, experts)
        .with_config(pipeline_cfg.clone())
        .with_telemetry(tel.clone())
        .run_supervised(&SupervisorConfig::default())
        .expect("supervised pipeline run succeeds");
    println!("PPO return trend (every 5th iteration):");
    for (i, stats) in result.ppo_history.iter().enumerate().step_by(5) {
        println!(
            "  iter {i:>3}: return {:>8.1}  safe episodes {:>5.1}%  mean length {:>5.1}",
            stats.mean_return,
            100.0 * stats.safe_fraction,
            stats.mean_length
        );
    }
    let mixed = evaluate_with_telemetry(sys.as_ref(), result.mixed.as_ref(), &cfg, workers, &*tel);
    println!(
        "A_W: S_r {:.1}%, e {:.1}",
        mixed.safe_rate_percent(),
        mixed.mean_energy
    );

    // example of the state-dependent weights
    for s in [[0.0, 0.0], [1.5, 1.5], [-1.8, 0.5]] {
        println!("  weights at {s:?}: {:?}", result.mixed.weights_at(&s));
    }

    // ---- stage 3: the two distillation variants
    println!("\ndistillation:");
    for (name, student) in [
        ("kappa_D", result.kappa_d.as_ref()),
        ("kappa_star", result.kappa_star.as_ref()),
    ] {
        let eval = evaluate_with_telemetry(sys.as_ref(), student, &cfg, workers, &*tel);
        println!(
            "{name}: S_r {:.1}%, e {:.1}, L {:.1}",
            eval.safe_rate_percent(),
            eval.mean_energy,
            student.lipschitz_constant()
        );
    }

    // ---- stage 4: the formal safety-certification stage (Bernstein
    // certificate with partition refinement, closed-loop reachability,
    // control-invariant set — one serializable, re-derivable artifact)
    println!("\ncertifying kappa_star (Bernstein + reachability + invariant set) ...");
    let cert = certify_student(sys_id, result.kappa_star.as_ref(), None, workers, &*tel)
        .expect("default budgets certify the distilled student");
    println!(
        "safety certificate: verdict {} — {} pieces (eps {:.3}, L {:.1}, {} splits), \
         reach {} steps (peak {} boxes, safe {}), invariant {}/{} cells alive \
         ({} sweeps, digest {:016x}), verified in {:.0} ms",
        cert.verdict.label(),
        cert.pieces,
        cert.epsilon,
        cert.lipschitz,
        cert.refinement_splits,
        cert.reach_steps,
        cert.reach_peak_boxes,
        cert.reach_safe,
        cert.invariant_alive,
        cert.invariant_cells,
        cert.invariant_iterations,
        cert.invariant_digest,
        cert.verify_ms
    );

    // ---- optional: the determinism self-check behind the admission gate
    if std::env::args().any(|a| a == "--verify") {
        println!("re-deriving the certificate from scratch (--verify self-check) ...");
        let json = serde_json::to_string(&cert).expect("certificate serializes");
        let fresh = certify_student(
            sys_id,
            result.kappa_star.as_ref(),
            Some(&cert.params),
            workers,
            &*tel,
        )
        .expect("re-derivation succeeds under the same budgets");
        assert!(
            cert.matches(&fresh, 0.0),
            "certificate must re-derive exactly: {:?}",
            cert.diff(&fresh, 0.0)
        );
        println!(
            "self-check: OK — {} byte certificate re-derives bit-for-bit \
             (modulo wall-clock: {:.0} ms vs {:.0} ms)",
            json.len(),
            cert.verify_ms,
            fresh.verify_ms
        );
    }

    // ---- optional: export the verified student as a serving bundle
    if let Some(path) = flag_path("--export-bundle") {
        export_bundle(&path, sys_id, &result, &pipeline_cfg, &*tel);
    }

    // ---- telemetry: read the stream back and print the aggregate view
    if let Some(path) = tel_path {
        let events = read_jsonl(&path).expect("telemetry stream parses back");
        println!(
            "\ntelemetry: {} events written to {}",
            events.len(),
            path.display()
        );
        print!("{}", render_telemetry_summary(&summarize(&events)));
    }
}

/// The `--faults` mode: inject a permanent NaN fault into one expert and
/// show the degradation monitor quarantining it while the remaining
/// experts keep the plant safe.
fn fault_drill(sys_id: SystemId, cfg: &EvalConfig) {
    use cocktail_control::{ConstantWeights, DegradationConfig, FaultyExpert, MixedController};
    use cocktail_core::report::render_degradation_events;
    use cocktail_env::fault::{FaultKind, FaultPlan};
    use std::sync::Arc;

    let sys = sys_id.dynamics();
    let experts = cloned_experts(sys_id, 0);
    let (u_lo, u_hi) = sys.control_bounds();
    let weights = Arc::new(ConstantWeights(vec![0.5; experts.len()]));

    let healthy =
        MixedController::new(experts.clone(), weights.clone(), u_lo.clone(), u_hi.clone());
    let healthy_eval = evaluate(sys.as_ref(), &healthy, cfg);
    println!(
        "all-healthy mixture: S_r {:.1}%",
        healthy_eval.safe_rate_percent()
    );

    // expert 0 turns into a NaN source partway through every episode
    let plan = FaultPlan::window(FaultKind::NanOutput, 10, None);
    let mut faulted = experts.clone();
    faulted[0] = Arc::new(FaultyExpert::new(experts[0].clone(), plan, 0));
    println!(
        "injecting: {} emits NaN from step 10 onwards",
        faulted[0].name()
    );

    let unguarded =
        MixedController::new(faulted.clone(), weights.clone(), u_lo.clone(), u_hi.clone());
    let unguarded_eval = evaluate(sys.as_ref(), &unguarded, cfg);
    println!(
        "without quarantine:  S_r {:.1}% (NaN controls abort the rollout)",
        unguarded_eval.safe_rate_percent()
    );

    let guarded = MixedController::new(faulted, weights, u_lo, u_hi)
        .with_degradation(DegradationConfig::default());
    let guarded_eval = evaluate(sys.as_ref(), &guarded, cfg);
    println!(
        "with quarantine:     S_r {:.1}%",
        guarded_eval.safe_rate_percent()
    );

    let events = guarded.take_degradation_events();
    println!(
        "\ndegradation report ({} events, first 10 shown):",
        events.len()
    );
    let shown: Vec<_> = events.iter().take(10).cloned().collect();
    print!("{}", render_degradation_events(&shown));
}
