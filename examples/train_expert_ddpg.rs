//! Training a neural expert with DDPG — the paper's original expert
//! construction path ("obtained by DDPG with different hyperparameters").
//!
//! ```text
//! cargo run --release --example train_expert_ddpg
//! ```
//!
//! Trains two DDPG actors with different hyperparameters on the Van der
//! Pol oscillator and evaluates them as controllers. Slower than the
//! behavior-cloned expert factory (the pipeline default) but fully
//! self-contained — no reference law involved.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "examples abort on failure by design"
)]

use cocktail_core::experts::ddpg_expert;
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::SystemId;
use cocktail_rl::DdpgConfig;

fn main() {
    let sys_id = SystemId::Oscillator;
    let sys = sys_id.dynamics();

    // "different hyperparameters": network width, learning rates, noise
    let config_a = DdpgConfig {
        episodes: 60,
        hidden: 32,
        actor_lr: 1e-3,
        exploration_noise: 0.3,
        seed: 1,
        ..Default::default()
    };
    let config_b = DdpgConfig {
        episodes: 60,
        hidden: 16,
        actor_lr: 3e-3,
        exploration_noise: 0.5,
        seed: 2,
        ..Default::default()
    };

    for (name, config) in [("ddpg-expert-a", config_a), ("ddpg-expert-b", config_b)] {
        println!("training {name} ({} episodes) ...", config.episodes);
        let expert = ddpg_expert(sys_id, &config, name);
        let eval = evaluate(
            sys.as_ref(),
            &expert,
            &EvalConfig {
                samples: 250,
                ..Default::default()
            },
        );
        println!(
            "{name}: S_r {:.1}%, e {:.1}, L {:.1}",
            eval.safe_rate_percent(),
            eval.mean_energy,
            expert.lipschitz_constant()
        );
        // the actor can be persisted and reloaded
        let json = expert.network().to_json().expect("serializable");
        println!("  serialized actor: {} bytes of JSON\n", json.len());
    }
    println!(
        "Either expert (or both) can be handed to cocktail_core::pipeline::Cocktail \
         as the expert list for adaptive mixing."
    );
}
