//! Robustness of the distilled students under attacks — the Table II
//! experiment on the cartpole.
//!
//! ```text
//! cargo run --release --example cartpole_robustness
//! ```
//!
//! Compares the direct student `κ_D` against the robust student `κ*`
//! under (a) no perturbation, (b) uniform measurement noise, and (c) FGSM
//! adversarial attacks at 12 % of the state bound.

#![allow(
    clippy::expect_used,
    clippy::unwrap_used,
    reason = "examples abort on failure by design"
)]

use cocktail_core::experiment::{build_controller_set, Preset};
use cocktail_core::metrics::{evaluate, EvalConfig};
use cocktail_core::SystemId;
use cocktail_distill::AttackModel;

fn main() {
    let sys_id = SystemId::CartPole;
    let sys = sys_id.dynamics();
    let preset = Preset::from_env(Preset::Fast);
    println!("building the cartpole controller set ({preset:?} preset) ...");
    let set = build_controller_set(sys_id, preset, 0);
    let domain = sys.verification_domain();

    println!(
        "\nLipschitz constants: kappa_D = {:.1}, kappa_star = {:.1}",
        set.kappa_d.lipschitz_constant(),
        set.kappa_star.lipschitz_constant()
    );

    println!(
        "\n{:<14} {:<22} {:>8} {:>10}",
        "controller", "threat", "S_r (%)", "energy"
    );
    let threats = [
        ("none", AttackModel::None),
        (
            "uniform noise 12%",
            AttackModel::scaled_to(&domain, 0.12, false),
        ),
        (
            "FGSM attack 12%",
            AttackModel::scaled_to(&domain, 0.12, true),
        ),
    ];
    for (threat_name, attack) in threats {
        for (name, student) in [
            ("kappa_D", set.kappa_d.clone()),
            ("kappa_star", set.kappa_star.clone()),
        ] {
            let eval = evaluate(
                sys.as_ref(),
                student.as_ref(),
                &EvalConfig {
                    samples: 250,
                    attack: attack.clone(),
                    ..Default::default()
                },
            );
            println!(
                "{:<14} {:<22} {:>8.1} {:>10.1}",
                name,
                threat_name,
                eval.safe_rate_percent(),
                eval.mean_energy
            );
        }
    }
    println!(
        "\nThe lower-Lipschitz kappa_star degrades less under perturbations — \
         the paper's robust-distillation claim."
    );
}
